"""Compile nemesis faultloads onto the live deployment (`nemesis --live`).

The nemesis subsystem (PR 2) injects faults into the *simulator*; this
module is the second compilation target of the same declarative
:class:`~repro.config.FaultloadConfig`, so one faultload JSON replays in
both modes:

=====================  =========================================  ====================================
fault event            simulator compilation                      live compilation
=====================  =========================================  ====================================
``CrashEvent``         halt the process model (fail-stop)         timed ``SIGKILL`` + scheduled
                                                                  restart with WAL crash recovery
``PartitionEvent``     hold/drop queued messages in the network   transport-level HOLD/DROP link
                       model                                      directives over the control channel
``DelaySpike``         add latency in the network model           per-frame sleep in the transport
                                                                  sender loops
``LossBurst``          probabilistic per-message loss             *unsupported live* (rejected)
``WrongSuspicion``     scripted FD override                       *unsupported live* (rejected)
=====================  =========================================  ====================================

One semantic divergence is deliberate: the simulator's crash is
permanent (fail-stop, the paper's model), while the live compilation
restarts the victim after ``restart_delay`` — that is the whole point
of exercising the WAL/rejoin machinery. Safety invariants must hold in
both readings; the live liveness check therefore also demands post-heal
progress from the *recovered* process.

After the run, :func:`check_merged_logs` merges the per-worker
write-ahead delivery logs and replays them through the unchanged
:class:`~repro.nemesis.invariants.InvariantMonitor` — the same checker
the simulator uses — plus an offline liveness watchdog (every worker
must have delivered past the last disruption).
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import FaultloadConfig, LinkFaultMode
from repro.errors import DeploymentError
from repro.live.deploy import (
    READY_TIMEOUT,
    LiveSpec,
    _ControlServer,
    _monitored_sleep,
    _reduce,
    _spawn_worker,
    _wait_event,
    reserve_ports,
    worker_spec,
)
from repro.live.wal import read_wal
from repro.nemesis.invariants import InvariantMonitor, Violation
from repro.types import AppMessage, MessageId

#: Seconds between a scheduled SIGKILL and the victim's restart.
DEFAULT_RESTART_DELAY = 0.4

#: Post-disruption seconds each worker gets to show delivery progress
#: before the offline liveness check flags a stall. Wider than the sim
#: default: a live rejoin pays real fork/exec + TCP + state transfer.
DEFAULT_LIVE_LIVENESS_BOUND = 2.0

#: Quiet margin the run keeps between the last fault action and the end
#: of the arrival window, so post-heal progress is observable at all.
_QUIET_MARGIN = 0.6

#: Once the last restarted worker confirms recovery, the group keeps
#: running this long so post-recovery consensus rounds (the recovered
#: worker's re-injected messages, in-flight instances) land in every
#: delivery log before the window closes.
_RECOVERY_SETTLE = 0.6

#: How long a restarted worker gets to confirm recovery (fork/exec,
#: interpreter start-up, state transfer retries) before the run fails.
RECOVERY_TIMEOUT = 15.0


@dataclass(frozen=True, slots=True)
class LiveFaultAction:
    """One timed action of the compiled live fault schedule."""

    #: Seconds after the epoch at which the action fires.
    at: float
    #: ``kill`` | ``restart`` | ``fault`` (link directives).
    kind: str
    #: Victim pid for kill/restart actions.
    pid: int | None = None
    #: ``(target pid, control document)`` pairs for ``fault`` actions.
    directives: tuple[tuple[int, dict], ...] = ()
    #: Human-readable form for the report timeline.
    describe: str = ""


def compile_live_faultload(
    faultload: FaultloadConfig,
    n: int,
    *,
    restart_delay: float = DEFAULT_RESTART_DELAY,
) -> list[LiveFaultAction]:
    """Compile *faultload* into a time-sorted live action schedule.

    Raises:
        DeploymentError: For faultload features without a live
            compilation (loss bursts, wrong suspicions) or crash times
            that would make kill and restart overlap per victim.
    """
    unsupported = []
    if faultload.loss_bursts:
        unsupported.append("loss_bursts")
    if faultload.wrong_suspicions:
        unsupported.append("wrong_suspicions")
    if unsupported:
        raise DeploymentError(
            f"faultload features unsupported in live mode: {', '.join(unsupported)} "
            "(live supports crashes, partitions and delay spikes)"
        )
    actions: list[LiveFaultAction] = []
    seen_victims: set[int] = set()
    for crash in faultload.crashes:
        if not 0 <= crash.process < n:
            raise DeploymentError(
                f"crash victim p{crash.process} outside the group 0..{n - 1}"
            )
        if crash.process in seen_victims:
            raise DeploymentError(
                f"process {crash.process} is crashed twice; the live runner "
                "restarts each victim once"
            )
        seen_victims.add(crash.process)
        actions.append(
            LiveFaultAction(
                at=crash.time,
                kind="kill",
                pid=crash.process,
                describe=f"SIGKILL worker {crash.process}",
            )
        )
        actions.append(
            LiveFaultAction(
                at=crash.time + restart_delay,
                kind="restart",
                pid=crash.process,
                describe=f"restart worker {crash.process} (recover from WAL)",
            )
        )
    for partition in faultload.partitions:
        op_on = "hold" if partition.mode is LinkFaultMode.HOLD else "drop"
        op_off = "release" if partition.mode is LinkFaultMode.HOLD else "undrop"
        cut: dict[int, list[int]] = {}
        for src in range(n):
            peers = [
                dst for dst in range(n) if dst != src and partition.severs(src, dst)
            ]
            if peers:
                cut[src] = peers
        groups = "|".join(",".join(map(str, g)) for g in partition.groups)
        actions.append(
            LiveFaultAction(
                at=partition.start,
                kind="fault",
                directives=tuple(
                    (pid, {"type": "fault", "op": op_on, "peers": peers})
                    for pid, peers in cut.items()
                ),
                describe=f"partition [{groups}] up ({op_on})",
            )
        )
        actions.append(
            LiveFaultAction(
                at=partition.heal,
                kind="fault",
                directives=tuple(
                    (pid, {"type": "fault", "op": op_off, "peers": peers})
                    for pid, peers in cut.items()
                ),
                describe=f"partition [{groups}] healed",
            )
        )
    for spike in faultload.delay_spikes:
        slowed: dict[int, list[int]] = {}
        for src in range(n):
            peers = [
                dst for dst in range(n) if dst != src and spike.matches(src, dst)
            ]
            if peers:
                slowed[src] = peers
        actions.append(
            LiveFaultAction(
                at=spike.start,
                kind="fault",
                directives=tuple(
                    (
                        pid,
                        {
                            "type": "fault",
                            "op": "delay",
                            "peers": peers,
                            "extra": spike.extra_delay,
                            "jitter": spike.jitter,
                        },
                    )
                    for pid, peers in slowed.items()
                ),
                describe=f"delay spike +{spike.extra_delay * 1e3:.1f}ms up",
            )
        )
        actions.append(
            LiveFaultAction(
                at=spike.end,
                kind="fault",
                directives=tuple(
                    (pid, {"type": "fault", "op": "clear_delay", "peers": peers})
                    for pid, peers in slowed.items()
                ),
                describe="delay spike over",
            )
        )
    return sorted(actions, key=lambda action: action.at)


@dataclass
class LiveNemesisReport:
    """Outcome of one ``nemesis --live`` run."""

    #: Whether the merged delivery logs passed every invariant.
    passed: bool
    violations: tuple[Violation, ...]
    #: Deliveries that went through the merged-log safety checks.
    deliveries: int
    #: Distinct messages accepted across all workers (from the WALs).
    accepted: int
    kills: int
    restarts: int
    #: Workers whose final report confirms a WAL recovery.
    recovered: tuple[int, ...]
    #: Torn-tail bytes truncated across all recovered WALs.
    wal_truncated_bytes: int
    backpressure_stalls: int
    #: The fault schedule as executed, human-readable.
    timeline: tuple[str, ...] = ()
    #: The reduced live measurement (shared sim/live result schema).
    result: dict = field(default_factory=dict)


def check_merged_logs(
    n: int,
    wal_dir: str | Path,
    *,
    quiet_time: float = 0.0,
    liveness_bound: float = DEFAULT_LIVE_LIVENESS_BOUND,
    check_liveness: bool = True,
    expect_all_delivered: bool = True,
) -> tuple[InvariantMonitor, int]:
    """Replay merged per-worker WALs through the invariant monitor.

    Accept records (write-ahead, fsynced before the message could reach
    any peer) form the abcast universe; deliver records, replayed in
    global timestamp order (stable, so each worker's own order is
    preserved), face the same four online safety checks as a simulated
    run. The offline liveness watchdog then demands that every worker's
    log shows a delivery after ``quiet_time + liveness_bound`` worth of
    post-disruption calm — a recovered worker that never caught up, or
    a group that stalled after a heal, fails here.

    Returns the monitor (finalized) and the number of accepted ids.
    """
    wal_dir = Path(wal_dir)
    accepts: list[tuple[float, MessageId]] = []
    delivers: list[tuple[float, int, MessageId]] = []
    last_delivery = [0.0] * n
    for pid in range(n):
        records, __ = read_wal(wal_dir / f"worker-{pid}.wal")
        for record in records:
            kind = record.get("t")
            if kind == "accept":
                accepts.append(
                    (
                        float(record.get("at", 0.0)),
                        MessageId(int(record["s"]), int(record["q"])),
                    )
                )
            elif kind == "deliver":
                when = float(record.get("at", 0.0))
                delivers.append(
                    (when, pid, MessageId(int(record["s"]), int(record["q"])))
                )
                last_delivery[pid] = max(last_delivery[pid], when)
    monitor = InvariantMonitor(n)
    for at, msg_id in sorted(accepts, key=lambda entry: entry[0]):
        monitor.on_abcast(AppMessage(msg_id=msg_id, size=0, abcast_time=at))
    for when, pid, msg_id in sorted(delivers, key=lambda entry: entry[0]):
        monitor.on_adeliver(
            pid, AppMessage(msg_id=msg_id, size=0, abcast_time=0.0), when
        )
    end = max(
        [at for at, __ in accepts] + [when for when, __, __ in delivers],
        default=0.0,
    )
    monitor.finalize(
        expect_all_delivered=expect_all_delivered, now=end, crashed=set()
    )
    if check_liveness and delivers:
        for pid in range(n):
            if last_delivery[pid] < quiet_time:
                monitor.violations.append(
                    Violation(
                        invariant="liveness",
                        time=end,
                        description=(
                            f"p{pid} shows no delivery after the last "
                            f"disruption quieted at t={quiet_time:.2f} "
                            f"(last delivery t={last_delivery[pid]:.2f}; "
                            f"bound {liveness_bound:.2f}s)"
                        ),
                    )
                )
    return monitor, len({msg_id for __, msg_id in accepts})


async def _run_nemesis_live_async(
    spec: LiveSpec,
    faultload: FaultloadConfig,
    actions: list[LiveFaultAction],
    restart_delay: float,
    liveness_bound: float,
) -> LiveNemesisReport:
    assert spec.wal_dir is not None
    ports = reserve_ports(spec.host, spec.n)
    addresses = {pid: (spec.host, ports[pid]) for pid in range(spec.n)}

    control = _ControlServer(spec.n)
    server = await asyncio.start_server(control.handle, spec.host, 0)
    control_port = server.sockets[0].getsockname()[1]

    workers = []
    expected_dead: set[int] = set()
    timeline: list[str] = []
    restarted: list[int] = []
    kills = 0
    restarts = 0
    try:
        for pid in range(spec.n):
            workers.append(
                _spawn_worker(worker_spec(spec, pid, addresses, control_port))
            )
        await _wait_event(control.all_ready, READY_TIMEOUT, workers, "workers ready")
        epoch = time.monotonic()
        control.broadcast({"type": "start", "epoch": epoch})

        for action in actions:
            await _monitored_sleep(
                epoch + action.at - time.monotonic(), workers, expected_dead
            )
            timeline.append(f"t={action.at:.2f} {action.describe}")
            if action.kind == "kill":
                assert action.pid is not None
                victim = workers[action.pid]
                if victim.poll() is None:
                    victim.send_signal(signal.SIGKILL)
                    victim.wait()
                expected_dead.add(action.pid)
                kills += 1
            elif action.kind == "restart":
                assert action.pid is not None
                old = workers[action.pid]
                if old.stderr is not None:
                    old.stderr.close()
                workers[action.pid] = _spawn_worker(
                    worker_spec(
                        spec, action.pid, addresses, control_port, recover=True
                    )
                )
                expected_dead.discard(action.pid)
                restarted.append(action.pid)
                restarts += 1
            else:
                for pid, document in action.directives:
                    control.send_to(pid, document)

        # The scheduled restart instant only marks the fork; the new
        # process pays interpreter start-up and state-transfer retries
        # before it is caught up. Hold the window open until every
        # restarted worker confirms recovery, plus a settle margin so
        # the post-recovery consensus rounds reach every delivery log.
        # Under a liveness-unsafe faultload (e.g. an unhealed
        # partition) recovery may rightly never complete — skip.
        if restarted and faultload.liveness_safe:
            for pid in restarted:
                await _wait_event(
                    control.recovery_event(pid),
                    RECOVERY_TIMEOUT,
                    workers,
                    f"worker {pid} WAL recovery",
                    expected_dead,
                )
            timeline.append(
                f"t={time.monotonic() - epoch:.2f} all restarted workers recovered"
            )
            await _monitored_sleep(_RECOVERY_SETTLE, workers, expected_dead)
        total = spec.warmup + spec.duration + spec.drain
        await _monitored_sleep(
            epoch + total - time.monotonic(), workers, expected_dead
        )
        control.broadcast({"type": "stop"})
        await _wait_event(
            control.all_done,
            READY_TIMEOUT,
            workers,
            "final worker reports",
            expected_dead,
        )
    finally:
        server.close()
        await server.wait_closed()
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=5.0)
            except Exception:
                worker.kill()
                worker.wait()
            if worker.stderr is not None:
                worker.stderr.close()

    result = _reduce(spec, control)
    quiet_time = max([action.at for action in actions], default=0.0)
    monitor, accepted = check_merged_logs(
        spec.n,
        spec.wal_dir,
        quiet_time=quiet_time,
        liveness_bound=liveness_bound,
        check_liveness=faultload.liveness_safe,
        expect_all_delivered=faultload.liveness_safe,
    )
    recovered = tuple(
        sorted(
            pid
            for pid, document in control.done.items()
            if document.get("recovered")
        )
    )
    truncated = sum(
        int(document.get("wal_truncated_bytes", 0))
        for document in control.done.values()
    )
    stalls = sum(
        int(document.get("backpressure_stalls", 0))
        for document in control.done.values()
    )
    return LiveNemesisReport(
        passed=monitor.passed,
        violations=tuple(monitor.violations),
        deliveries=monitor.delivery_count,
        accepted=accepted,
        kills=kills,
        restarts=restarts,
        recovered=recovered,
        wal_truncated_bytes=truncated,
        backpressure_stalls=stalls,
        timeline=tuple(timeline),
        result=result,
    )


def run_nemesis_live(
    spec: LiveSpec,
    faultload: FaultloadConfig,
    *,
    restart_delay: float = DEFAULT_RESTART_DELAY,
    liveness_bound: float = DEFAULT_LIVE_LIVENESS_BOUND,
) -> LiveNemesisReport:
    """Run *faultload* against a real deployment and check the logs.

    The measurement window is stretched, if needed, so the last fault
    action (kill, restart, heal) lands at least :data:`_QUIET_MARGIN`
    seconds before arrivals stop — otherwise post-heal progress would
    be unobservable and the liveness check meaningless. WALs go to
    ``spec.wal_dir``, or a temporary directory when unset.

    Raises:
        DeploymentError: Unsupported faultload features, a worker dying
            outside the schedule, or deployment-level failures.
    """
    spec.validate()
    actions = compile_live_faultload(
        faultload, spec.n, restart_delay=restart_delay
    )
    last_action = max([action.at for action in actions], default=0.0)
    needed = last_action + _QUIET_MARGIN - spec.warmup
    if spec.duration < needed:
        spec = dataclasses.replace(spec, duration=needed)
    if spec.wal_dir is not None:
        os.makedirs(spec.wal_dir, exist_ok=True)
        return asyncio.run(
            _run_nemesis_live_async(
                spec, faultload, actions, restart_delay, liveness_bound
            )
        )
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as wal_dir:
        spec = dataclasses.replace(spec, wal_dir=wal_dir)
        return asyncio.run(
            _run_nemesis_live_async(
                spec, faultload, actions, restart_delay, liveness_bound
            )
        )
