"""Wall-clock runtime: the same stacks over real asyncio TCP sockets.

The simulator (:mod:`repro.sim`, :mod:`repro.experiments.runner`)
executes the protocol stacks in virtual time with modelled CPU and
network costs; this package executes the *unchanged*
:class:`~repro.stack.module.Microprotocol` stacks between real OS
processes on localhost (or a LAN), matching the paper's Fortika-over-TCP
testbed methodology:

* :mod:`repro.live.transport` — length-prefixed framing over asyncio TCP
  with per-peer FIFO streams and reconnect-with-backoff;
* :mod:`repro.live.runtime` — :class:`~repro.live.runtime.LiveRuntime`,
  the wall-clock implementation of the
  :class:`~repro.stack.interface.RuntimeProtocol` contract;
* :mod:`repro.live.worker` — one protocol process (spawned as
  ``python -m repro.live.worker``);
* :mod:`repro.live.deploy` — the orchestrator: spawns workers, drives
  the open-loop workload, collects samples over a control channel and
  reduces them to the same schema as the simulator's ``RunResult``;
* :mod:`repro.live.wal` — the per-worker write-ahead delivery log
  (CRC-framed, fsync-batched) crash recovery reads back;
* :mod:`repro.live.faults` — ``nemesis --live``: compile a faultload
  onto the deployment (SIGKILL + WAL recovery, link directives) and
  check the merged delivery logs against the abcast invariants;
* :mod:`repro.live.compare` — sim-vs-live side-by-side reports.
"""

from repro.live.deploy import LiveSpec, run_live
from repro.live.faults import LiveNemesisReport, run_nemesis_live
from repro.live.runtime import LiveRuntime
from repro.live.transport import FrameDecoder, Transport, encode_frame
from repro.live.wal import WalState, WalWriter, load_wal_state, read_wal

__all__ = [
    "FrameDecoder",
    "LiveNemesisReport",
    "LiveRuntime",
    "LiveSpec",
    "Transport",
    "WalState",
    "WalWriter",
    "encode_frame",
    "load_wal_state",
    "read_wal",
    "run_live",
    "run_nemesis_live",
]
