"""One live protocol process (``python -m repro.live.worker``).

A worker is one member of a live group: it hosts an unchanged protocol
stack on a :class:`~repro.live.runtime.LiveRuntime`, talks TCP to its
peers through a :class:`~repro.live.transport.Transport`, generates its
share of the open-loop workload behind the paper's flow-control window,
and streams measurement samples to the orchestrator over a control
connection (length-prefixed JSON frames, same framing as the data
plane).

Control protocol (worker perspective)::

    -> {"type": "ready", "pid": ...}            after the listener is up
    <- {"type": "start", "epoch": ...}          shared time origin
    <- {"type": "fault", "op": ..., ...}        link fault directives
                                                (nemesis --live only)
    -> {"type": "samples", "accepts": [...], "delivers": [...],
        "offered": k}                           every ~250 ms
    <- {"type": "stop"}                         measurement over
    -> {"type": "done", ...final counters...}   then the process exits

The spec (group membership, stack, workload, windows) arrives as one
JSON document in ``argv[1]`` — see :func:`worker_spec` in
:mod:`repro.live.deploy` for the schema and an example.

Crash recovery (see PROTOCOLS.md, "Crash recovery in the live
runtime"): with ``"wal"`` in the spec the worker write-ahead-logs
accepted and delivered messages; with ``"recover"`` additionally set it
is a restarted incarnation: it reloads the log, resumes the transport
at the persisted resume points, state-transfers the deliveries it
missed from a live peer (``SYNC_REQ``/``SYNC_RESP`` on the reserved
``recovery`` module channel), fast-forwards the stack with
:meth:`~repro.live.runtime.LiveRuntime.resume_at`, and re-injects its
own accepted-but-undelivered messages before rejoining the workload.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import time
from typing import Any

from repro.abcast.factory import build_process
from repro.config import ClientArrival, ClientPopulationConfig, stack_from_label
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.flowcontrol.window import BacklogWindow
from repro.live.runtime import LiveRuntime
from repro.live.transport import FrameDecoder, Transport, encode_frame
from repro.live.wal import WalState, WalWriter, load_wal_state
from repro.net.message import NetMessage
from repro.sim.tracing import NullTraceRecorder, TraceRecorder
from repro.stack.events import AbcastRequest
from repro.stack.module import Microprotocol
from repro.types import AppMessage, MessageId
from repro.workload.generator import FlowControlledSender
from repro.workload.population import ClientPool, population_gap_sampler

#: How often buffered samples are flushed to the orchestrator.
FLUSH_INTERVAL = 0.25

#: Exit code of a worker whose runtime crashed (fail-stop semantics).
CRASH_EXIT_CODE = 70

#: Module name reserved for the rejoin state-transfer messages; they
#: are handled by the worker itself, before stack routing.
RECOVERY_MODULE = "recovery"

#: How often an unanswered state-transfer request is re-sent (peers may
#: be partitioned away or recovering themselves; retry until one helps).
SYNC_RETRY_INTERVAL = 0.25


def send_control(writer: asyncio.StreamWriter, document: dict) -> None:
    """Frame and enqueue one control message."""
    writer.write(encode_frame(json.dumps(document).encode("utf-8")))


#: Set the environment variable ``REPRO_LIVE_TRACE=1`` to make every
#: worker narrate recovery/fault events on stderr (the orchestrator
#: surfaces a worker's stderr when it exits unexpectedly).
_TRACE = bool(os.environ.get("REPRO_LIVE_TRACE"))


def _trace(pid: int, text: str) -> None:
    if _TRACE:
        print(f"[worker {pid} t={time.monotonic():.3f}] {text}", file=sys.stderr, flush=True)


class Worker:
    """Wires one process: transport, runtime, workload, control client."""

    def __init__(self, spec: dict) -> None:
        self.spec = spec
        self.pid = int(spec["pid"])
        self.n = int(spec["n"])
        self.addresses = {
            int(pid): (host, int(port))
            for pid, (host, port) in spec["addresses"].items()
        }
        self.runtime: LiveRuntime | None = None
        self.transport: Transport | None = None
        self.sender: FlowControlledSender | None = None
        self.wal: WalWriter | None = None
        self._accepts: list[list] = []
        self._delivers: list[list] = []
        self._offered_reported = 0
        self._cpu_at_warmup = 0.0
        self._instances_at_warmup = 0
        self._network_at_warmup: dict = {}
        #: Full local adelivery sequence as (sender, seq) pairs — the
        #: state served to recovering peers via SYNC_REQ.
        self._delivered_log: list[tuple[int, int]] = []
        self._delivered_ids: set[tuple[int, int]] = set()
        self._backpressure_stalls = 0
        self._unordered_cap: int | None = (
            int(spec["unordered_cap"]) if spec.get("unordered_cap") else None
        )
        #: Recovery state: while gating, inbound protocol traffic is
        #: buffered until catch-up completes.
        self._wal_state = WalState()
        self._wal_truncated = 0
        self._recovering = bool(spec.get("recover")) and bool(spec.get("wal"))
        self._gating = False
        self._gated: list[NetMessage] = []
        self._sync_retry: asyncio.TimerHandle | None = None
        self._recovered = False
        self._control_writer: asyncio.StreamWriter | None = None
        #: Client-fleet driver: the logical clients this worker fronts,
        #: multiplexed over its single connection (``None`` = plain
        #: symmetric load, the paper's workload).
        self._pool: ClientPool | None = None
        #: Wall-clock span trace (``"trace_cap"`` in the spec turns it
        #: on); spans ship to the orchestrator in the done document.
        self.trace: TraceRecorder = (
            TraceRecorder(cap=int(spec["trace_cap"]))
            if spec.get("trace_cap")
            else NullTraceRecorder()
        )

    # -- assembly ----------------------------------------------------------

    def build(self) -> None:
        """Construct transport + runtime + workload source."""
        spec = self.spec
        if spec.get("wal"):
            if self._recovering:
                self._wal_state, self._wal_truncated = load_wal_state(spec["wal"])
                self._delivered_log = list(self._wal_state.delivered)
                self._delivered_ids = set(self._delivered_log)
            self.wal = WalWriter(spec["wal"])
        self._gating = self._recovering
        transport_holder: list[Transport] = []

        def on_message(message: Any) -> None:
            assert self.runtime is not None
            if message.module == RECOVERY_MODULE:
                self._on_recovery_message(message)
                return
            if self._gating:
                self._gated.append(message)
                return
            self.runtime.on_network_message(message)

        self.transport = Transport(
            self.pid,
            self.addresses,
            on_message,
            resume_points=self._wal_state.resume_counts,
            max_unacked=(
                int(spec["max_unacked"]) if spec.get("max_unacked") else None
            ),
        )
        transport_holder.append(self.transport)

        def make_runtime(modules: list[Microprotocol]) -> LiveRuntime:
            return LiveRuntime(
                self.pid,
                self.n,
                modules,
                transport_holder[0],
                on_crash=lambda: os._exit(CRASH_EXIT_CODE),
                trace=self.trace if self.trace.enabled else None,
            )

        runtime = build_process(
            stack_from_label(spec["stack"]),
            self.pid,
            self.n,
            make_runtime,
            max_batch=spec.get("max_batch"),
        )
        assert isinstance(runtime, LiveRuntime)
        self.runtime = runtime
        if spec.get("fd", "heartbeat") == "heartbeat":
            runtime.attach_failure_detector(
                HeartbeatFailureDetector(
                    spec.get("heartbeat_interval", 0.1),
                    spec.get("fd_timeout", 1.0),
                )
            )
        runtime.set_adeliver_listener(self._on_adeliver)
        self.sender = FlowControlledSender(
            runtime,
            BacklogWindow(int(spec.get("window", 3))),
            int(spec["size"]),
            on_accept=self._on_accept,
        )
        if self._recovering:
            # Own sequence numbers must never be reused across
            # incarnations: (sender, seq) is the message identity.
            self.sender.resume_from(self._wal_state.max_own_seq(self.pid) + 1)

    # -- measurement hooks -------------------------------------------------

    def _on_accept(self, message: Any) -> None:
        if self.wal is not None:
            # Write-ahead: the accept record must be durable before the
            # message can reach any peer, so the merged-log integrity
            # check never sees a delivered-but-never-accepted message.
            self.wal.append(
                {
                    "t": "accept",
                    "s": message.msg_id.sender,
                    "q": message.msg_id.seq,
                    "at": message.abcast_time,
                },
                sync=True,
            )
        self._accepts.append(
            [message.msg_id.sender, message.msg_id.seq, message.size, message.abcast_time]
        )

    def _on_adeliver(self, pid: int, message: Any, when: float) -> None:
        assert self.runtime is not None
        pair = (message.msg_id.sender, message.msg_id.seq)
        self._delivered_ids.add(pair)
        self._delivered_log.append(pair)
        if self.wal is not None:
            self.wal.append(
                {
                    "t": "deliver",
                    "s": pair[0],
                    "q": pair[1],
                    "at": when,
                    "i": self.runtime.modules[0].next_instance,
                }
            )
        self._delivers.append([pair[0], pair[1], when])
        if pair[0] == self.pid and self.sender is not None:
            self.sender.on_own_delivery(message)

    # -- crash recovery ----------------------------------------------------

    def _recovery_send(self, dst: int, kind: str, payload: dict, size: int) -> None:
        assert self.transport is not None
        self.transport.send(
            NetMessage(
                kind=kind,
                module=RECOVERY_MODULE,
                src=self.pid,
                dst=dst,
                payload=payload,
                payload_size=size,
                header_size=66,
            )
        )

    def _begin_recovery(self) -> None:
        """Start catch-up: ask live peers for the deliveries we missed."""
        assert self.runtime is not None
        if self.n == 1:
            self._complete_recovery(self._wal_state.next_instance)
            return
        loop = self.runtime.loop

        def request() -> None:
            if not self._gating:
                return
            # Re-arm before sending: a send raising must not silence
            # the retry loop (peers may simply not be reachable yet).
            self._sync_retry = loop.call_later(SYNC_RETRY_INTERVAL, request)
            _trace(self.pid, f"SYNC_REQ from={len(self._delivered_log)}")
            for dst in range(self.n):
                if dst != self.pid:
                    self._recovery_send(
                        dst, "SYNC_REQ", {"from": len(self._delivered_log)}, 16
                    )

        request()

    def _on_recovery_message(self, message: NetMessage) -> None:
        _trace(self.pid, f"recovery message {message.kind} from p{message.src}")
        if message.kind == "SYNC_REQ":
            self._serve_sync_request(message.src, message.payload)
        elif message.kind == "SYNC_RESP":
            self._apply_sync_response(message.payload)

    def _serve_sync_request(self, requester: int, payload: dict) -> None:
        """Answer a recovering peer with the deliveries it is missing."""
        assert self.runtime is not None
        if self._gating:
            return  # recovering ourselves; our log is not a frontier yet
        start = int(payload["from"])
        if start > len(self._delivered_log):
            _trace(self.pid, f"refusing SYNC_REQ: behind requester ({start})")
            return  # we are behind the requester; let someone else help
        entries = [[s, q] for s, q in self._delivered_log[start:]]
        _trace(self.pid, f"answering SYNC_REQ p{requester} with {len(entries)} entries")
        self._recovery_send(
            requester,
            "SYNC_RESP",
            {
                "from": start,
                "entries": entries,
                "next_instance": self.runtime.modules[0].next_instance,
            },
            16 + 12 * len(entries),
        )

    def _apply_sync_response(self, payload: dict) -> None:
        """First matching response wins: apply it and rejoin the stack."""
        assert self.runtime is not None
        if not self._gating:
            return
        if int(payload["from"]) != len(self._delivered_log):
            _trace(self.pid, "stale SYNC_RESP ignored")
            return  # stale response to an earlier request
        next_instance = int(payload["next_instance"])
        now = self.runtime.now
        for sender, seq in payload["entries"]:
            pair = (int(sender), int(seq))
            if pair in self._delivered_ids:
                continue
            self._delivered_ids.add(pair)
            self._delivered_log.append(pair)
            if self.wal is not None:
                self.wal.append(
                    {"t": "deliver", "s": pair[0], "q": pair[1],
                     "at": now, "i": next_instance}
                )
            self._delivers.append([pair[0], pair[1], now])
        self._complete_recovery(next_instance)

    def _complete_recovery(self, next_instance: int) -> None:
        """Fast-forward the stack, replay gated traffic, rejoin."""
        assert self.runtime is not None
        if self._sync_retry is not None:
            self._sync_retry.cancel()
            self._sync_retry = None
        delivered = {MessageId(s, q) for s, q in self._delivered_ids}
        self.runtime.resume_at(next_instance, delivered)
        self._gating = False
        gated, self._gated = self._gated, []
        for message in gated:
            self.runtime.on_network_message(message)
        # Own messages accepted by the previous incarnation but still
        # undelivered re-enter the stack (the write-ahead accept made
        # them this incarnation's obligation); receivers dedup via
        # their _adelivered sets, so a message that did make it out
        # before the crash is ordered exactly once.
        for sender, seq, __ in self._wal_state.accepted:
            if sender == self.pid and (sender, seq) not in self._delivered_ids:
                self.runtime.inject(
                    AbcastRequest(
                        AppMessage(
                            msg_id=MessageId(sender, seq),
                            size=int(self.spec["size"]),
                            abcast_time=self.runtime.now,
                        )
                    )
                )
        if self.wal is not None:
            self.wal.flush()
        self._recovered = True
        _trace(
            self.pid,
            f"recovery complete: next_instance={next_instance} "
            f"log={len(self._delivered_log)}",
        )
        if self._control_writer is not None:
            # Tell the orchestrator: it holds the measurement window
            # open until every restarted worker has caught up (process
            # start-up alone can eat the scheduled quiet margin).
            send_control(
                self._control_writer, {"type": "recovered", "pid": self.pid}
            )
        self._start_workload()

    # -- fault directives (nemesis --live) ---------------------------------

    def _apply_fault(self, document: dict) -> None:
        assert self.transport is not None
        op = document["op"]
        peers = {int(p) for p in document.get("peers", ())}
        if op == "hold":
            self.transport.hold_links(peers)
        elif op == "release":
            self.transport.release_links(peers)
        elif op == "drop":
            self.transport.drop_links(peers)
        elif op == "undrop":
            self.transport.undrop_links(peers)
        elif op == "delay":
            self.transport.set_link_delay(
                peers, float(document["extra"]), float(document.get("jitter", 0.0))
            )
        elif op == "clear_delay":
            self.transport.clear_link_delay(peers)

    # -- workload ----------------------------------------------------------

    def _backpressure_blocked(self) -> bool:
        """The end-to-end credit check consulted before each arrival.

        Two credit sources combine: the transport (no peer's unacked
        frame queue may sit at its cap — bounded memory towards slow or
        partitioned peers) and the ordering core (the top module's
        backlog of messages awaiting ordering must stay under the cap —
        a slow consensus pipeline pushes back on the arrival process
        instead of hoarding an unbounded unordered set).
        """
        assert self.runtime is not None and self.transport is not None
        if self.transport.congested:
            return True
        if self._unordered_cap is not None:
            top = self.runtime.modules[0]
            backlog = getattr(top, "unordered_count", None)
            if backlog is None:
                backlog = getattr(top, "pool_count", 0)
            if backlog >= self._unordered_cap:
                return True
        return False

    def _schedule_arrivals(self) -> None:
        """Open-loop arrivals: the paper's constant-rate load, or — with
        a ``population`` in the spec — the client-fleet driver.

        When the spec restricts the workload to a subset of ``senders``,
        the offered load is split across those processes only and the
        rest stay silent (they still deliver, of course).

        The fleet driver multiplexes this worker's share of the logical
        clients onto its one connection: gaps come from the population's
        aggregate arrival law (Poisson/bursty/diurnal) and each arrival
        is attributed to a Zipf-sampled client — O(1) per arrival, no
        per-client state beyond the sparse activity counters.
        """
        assert self.runtime is not None and self.sender is not None
        spec = self.spec
        senders = spec.get("senders")
        active = (
            [int(pid) for pid in senders] if senders else list(range(self.n))
        )
        if self.pid not in active:
            return
        rate = float(spec["load"]) / len(active)
        interval = 1.0 / rate
        stop_at = float(spec["warmup"]) + float(spec["duration"])
        rng = random.Random(int(spec.get("seed", 1)) * 1000 + self.pid)
        loop = self.runtime.loop

        sampler = None
        population = spec.get("population")
        if population is not None:
            config = ClientPopulationConfig(
                clients=int(population["clients"]),
                zipf_s=float(population["zipf_s"]),
                arrival=ClientArrival(population["arrival"]),
            )
            sampler = population_gap_sampler(config, rate, rng)
            self._pool = ClientPool(
                config,
                self.pid,
                self.n,
                random.Random(int(spec.get("seed", 1)) * 1000 + self.pid + 501),
            )

        def gap() -> float:
            assert self.runtime is not None
            if sampler is not None:
                return sampler.gap(self.runtime.now)
            return interval

        def tick() -> None:
            assert self.runtime is not None and self.sender is not None
            if self.runtime.now > stop_at or not self.runtime.alive:
                return
            if self._pool is not None:
                self._pool.on_arrival()
            if self._backpressure_blocked():
                # No credit: the arrival is refused outright (it never
                # reaches flow control) and retried next period.
                self._backpressure_stalls += 1
            else:
                self.sender.offer()
            loop.call_later(gap(), tick)

        if sampler is not None:
            first_delay = max(0.0, sampler.first_delay() - self.runtime.now)
        else:
            first_delay = max(0.0, rng.random() * interval - self.runtime.now)
        loop.call_later(first_delay, tick)

    def _start_workload(self) -> None:
        """Arrivals + warm-up snapshot; runs at start, or after rejoin."""
        assert self.runtime is not None
        self._schedule_arrivals()
        warmup_in = max(0.0, float(self.spec["warmup"]) - self.runtime.now)
        self.runtime.loop.call_later(warmup_in, self._at_warmup_end)

    def _at_warmup_end(self) -> None:
        assert self.runtime is not None and self.transport is not None
        self._cpu_at_warmup = time.process_time()
        self._instances_at_warmup = self.runtime.modules[0].next_instance
        self._network_at_warmup = self.transport.stats.snapshot()

    # -- reporting ---------------------------------------------------------

    def _drain_samples(self) -> dict | None:
        assert self.sender is not None
        offered_delta = self.sender.offered - self._offered_reported
        if not self._accepts and not self._delivers and offered_delta == 0:
            return None
        self._offered_reported = self.sender.offered
        document = {
            "type": "samples",
            "pid": self.pid,
            "accepts": self._accepts,
            "delivers": self._delivers,
            "offered": offered_delta,
        }
        self._accepts = []
        self._delivers = []
        return document

    def _telemetry_document(self) -> dict:
        """One counter/gauge snapshot (schema: :mod:`repro.obs.telemetry`)."""
        assert self.runtime is not None and self.transport is not None
        top = self.runtime.modules[0]
        backlog = getattr(top, "unordered_count", None)
        if backlog is None:
            backlog = getattr(top, "pool_count", 0)
        unacked = max(
            (
                self.transport.unacked_to(peer)
                for peer in range(self.n)
                if peer != self.pid
            ),
            default=0,
        )
        return {
            "type": "telemetry",
            "pid": self.pid,
            "t": self.runtime.now,
            "queue_depth": int(backlog),
            "unacked": int(unacked),
            "congested": bool(self.transport.congested),
            "backpressure_stalls": self._backpressure_stalls,
            "reconnects": self.transport.stats.reconnects,
            "wal_fsyncs": self.wal.fsyncs if self.wal is not None else 0,
        }

    def _span_rows(self) -> list[list]:
        """Serialize traced spans as ``[time, category, pid, detail]``."""
        rows = []
        for record in self.trace.records():
            if record.category.startswith("span."):
                rows.append(
                    [record.time, record.category, record.process, list(record.detail)]
                )
        return rows

    def _done_document(self) -> dict:
        assert self.runtime is not None and self.transport is not None
        assert self.sender is not None
        spec = self.spec
        duration = float(spec["duration"])
        network = self.transport.stats.snapshot()
        window_network = {
            key: network[key] - self._network_at_warmup.get(key, 0)
            for key in network
        }
        cpu_busy = time.process_time() - self._cpu_at_warmup
        return {
            "type": "done",
            "pid": self.pid,
            "network": window_network,
            "cpu_utilization": min(1.0, cpu_busy / duration) if duration > 0 else 0.0,
            "instances_at_warmup": self._instances_at_warmup,
            "instances_at_end": self.runtime.modules[0].next_instance,
            "blocked_attempts": self.sender.window.total_blocked,
            "messages_received": self.transport.stats.messages_received,
            "backpressure_stalls": self._backpressure_stalls,
            "recovered": self._recovered,
            "wal_truncated_bytes": self._wal_truncated,
            "active_clients": (
                self._pool.active_clients if self._pool is not None else 0
            ),
            "fleet_clients": self._pool.size if self._pool is not None else 0,
            "fleet_arrivals": (
                self._pool.arrivals if self._pool is not None else 0
            ),
            "boundary_crossings": self.runtime.boundary_crossings,
            "wal_fsyncs": self.wal.fsyncs if self.wal is not None else 0,
            "spans": self._span_rows() if self.trace.enabled else [],
            "trace_dropped": self.trace.dropped_records,
        }

    def _wal_checkpoint(self) -> None:
        """Snapshot transport resume points and flush batched records."""
        if self.wal is None or self.transport is None or self.runtime is None:
            return
        self.wal.append(
            {
                "t": "resume",
                "counts": {
                    str(peer): [nonce, count]
                    for peer, (nonce, count) in (
                        self.transport.delivered_counts().items()
                    )
                },
                "at": self.runtime.now,
            }
        )
        self.wal.flush()

    # -- main loop ---------------------------------------------------------

    async def run(self) -> int:
        """Execute the worker's whole life cycle; returns an exit code."""
        spec = self.spec
        self.build()
        assert self.runtime is not None and self.transport is not None
        await self.transport.start()

        control_host, control_port = spec["control"]
        reader, writer = await self._connect_control(control_host, int(control_port))
        self._control_writer = writer
        send_control(writer, {"type": "ready", "pid": self.pid})
        await writer.drain()

        flusher: asyncio.Task | None = None
        try:
            async for document in self._control_messages(reader):
                if document["type"] == "start":
                    self.runtime.set_epoch(float(document["epoch"]))
                    self.runtime.start()
                    flusher = asyncio.create_task(self._flush_loop(writer))
                    if self._gating:
                        self._begin_recovery()
                    else:
                        self._start_workload()
                elif document["type"] == "fault":
                    self._apply_fault(document)
                elif document["type"] == "stop":
                    break
            else:
                # Control channel gone: orchestrator died; don't linger.
                return 1
        finally:
            if flusher is not None:
                flusher.cancel()
            if self._sync_retry is not None:
                self._sync_retry.cancel()

        final = self._drain_samples()
        if final is not None:
            send_control(writer, final)
        send_control(writer, self._done_document())
        await writer.drain()
        if self.wal is not None:
            self._wal_checkpoint()
            self.wal.close()
        await self.transport.close()
        writer.close()
        return 0

    async def _connect_control(
        self, host: str, port: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        backoff = 0.05
        deadline = time.monotonic() + 10.0
        while True:
            try:
                return await asyncio.open_connection(host, port)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)

    async def _control_messages(self, reader: asyncio.StreamReader):
        decoder = FrameDecoder()
        while True:
            data = await reader.read(64 * 1024)
            if not data:
                return
            for frame in decoder.feed(data):
                yield json.loads(frame.decode("utf-8"))

    async def _flush_loop(self, writer: asyncio.StreamWriter) -> None:
        while True:
            await asyncio.sleep(FLUSH_INTERVAL)
            self._wal_checkpoint()
            document = self._drain_samples()
            if document is not None:
                send_control(writer, document)
            send_control(writer, self._telemetry_document())
            await writer.drain()


def main(argv: list[str] | None = None) -> int:
    """Worker entry point: ``python -m repro.live.worker '<spec json>'``."""
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.live.worker '<spec json>'", file=sys.stderr)
        return 2
    spec = json.loads(args[0])
    return asyncio.run(Worker(spec).run())


if __name__ == "__main__":
    sys.exit(main())
