"""One live protocol process (``python -m repro.live.worker``).

A worker is one member of a live group: it hosts an unchanged protocol
stack on a :class:`~repro.live.runtime.LiveRuntime`, talks TCP to its
peers through a :class:`~repro.live.transport.Transport`, generates its
share of the open-loop workload behind the paper's flow-control window,
and streams measurement samples to the orchestrator over a control
connection (length-prefixed JSON frames, same framing as the data
plane).

Control protocol (worker perspective)::

    -> {"type": "ready", "pid": ...}            after the listener is up
    <- {"type": "start", "epoch": ...}          shared time origin
    -> {"type": "samples", "accepts": [...], "delivers": [...],
        "offered": k}                           every ~250 ms
    <- {"type": "stop"}                         measurement over
    -> {"type": "done", ...final counters...}   then the process exits

The spec (group membership, stack, workload, windows) arrives as one
JSON document in ``argv[1]`` — see :func:`worker_spec` in
:mod:`repro.live.deploy` for the schema and an example.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sys
import time
from typing import Any

from repro.abcast.factory import build_process
from repro.config import stack_from_label
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.flowcontrol.window import BacklogWindow
from repro.live.runtime import LiveRuntime
from repro.live.transport import FrameDecoder, Transport, encode_frame
from repro.stack.module import Microprotocol
from repro.workload.generator import FlowControlledSender

#: How often buffered samples are flushed to the orchestrator.
FLUSH_INTERVAL = 0.25

#: Exit code of a worker whose runtime crashed (fail-stop semantics).
CRASH_EXIT_CODE = 70


def send_control(writer: asyncio.StreamWriter, document: dict) -> None:
    """Frame and enqueue one control message."""
    writer.write(encode_frame(json.dumps(document).encode("utf-8")))


class Worker:
    """Wires one process: transport, runtime, workload, control client."""

    def __init__(self, spec: dict) -> None:
        self.spec = spec
        self.pid = int(spec["pid"])
        self.n = int(spec["n"])
        self.addresses = {
            int(pid): (host, int(port))
            for pid, (host, port) in spec["addresses"].items()
        }
        self.runtime: LiveRuntime | None = None
        self.transport: Transport | None = None
        self.sender: FlowControlledSender | None = None
        self._accepts: list[list] = []
        self._delivers: list[list] = []
        self._offered_reported = 0
        self._cpu_at_warmup = 0.0
        self._instances_at_warmup = 0
        self._network_at_warmup: dict = {}

    # -- assembly ----------------------------------------------------------

    def build(self) -> None:
        """Construct transport + runtime + workload source."""
        spec = self.spec
        transport_holder: list[Transport] = []

        def on_message(message: Any) -> None:
            assert self.runtime is not None
            self.runtime.on_network_message(message)

        self.transport = Transport(self.pid, self.addresses, on_message)
        transport_holder.append(self.transport)

        def make_runtime(modules: list[Microprotocol]) -> LiveRuntime:
            return LiveRuntime(
                self.pid,
                self.n,
                modules,
                transport_holder[0],
                on_crash=lambda: os._exit(CRASH_EXIT_CODE),
            )

        runtime = build_process(
            stack_from_label(spec["stack"]),
            self.pid,
            self.n,
            make_runtime,
            max_batch=spec.get("max_batch"),
        )
        assert isinstance(runtime, LiveRuntime)
        self.runtime = runtime
        if spec.get("fd", "heartbeat") == "heartbeat":
            runtime.attach_failure_detector(
                HeartbeatFailureDetector(
                    spec.get("heartbeat_interval", 0.1),
                    spec.get("fd_timeout", 1.0),
                )
            )
        runtime.set_adeliver_listener(self._on_adeliver)
        self.sender = FlowControlledSender(
            runtime,
            BacklogWindow(int(spec.get("window", 3))),
            int(spec["size"]),
            on_accept=self._on_accept,
        )

    # -- measurement hooks -------------------------------------------------

    def _on_accept(self, message: Any) -> None:
        self._accepts.append(
            [message.msg_id.sender, message.msg_id.seq, message.size, message.abcast_time]
        )

    def _on_adeliver(self, pid: int, message: Any, when: float) -> None:
        self._delivers.append([message.msg_id.sender, message.msg_id.seq, when])
        if message.msg_id.sender == self.pid and self.sender is not None:
            self.sender.on_own_delivery(message)

    # -- workload ----------------------------------------------------------

    def _schedule_arrivals(self) -> None:
        """Open-loop uniform arrivals, as the paper's constant-rate load.

        When the spec restricts the workload to a subset of ``senders``,
        the offered load is split across those processes only and the
        rest stay silent (they still deliver, of course).
        """
        assert self.runtime is not None and self.sender is not None
        spec = self.spec
        senders = spec.get("senders")
        active = (
            [int(pid) for pid in senders] if senders else list(range(self.n))
        )
        if self.pid not in active:
            return
        rate = float(spec["load"]) / len(active)
        interval = 1.0 / rate
        stop_at = float(spec["warmup"]) + float(spec["duration"])
        rng = random.Random(int(spec.get("seed", 1)) * 1000 + self.pid)
        loop = self.runtime.loop

        def tick() -> None:
            assert self.runtime is not None and self.sender is not None
            if self.runtime.now > stop_at or not self.runtime.alive:
                return
            self.sender.offer()
            loop.call_later(interval, tick)

        first_delay = max(0.0, rng.random() * interval - self.runtime.now)
        loop.call_later(first_delay, tick)

    def _at_warmup_end(self) -> None:
        assert self.runtime is not None and self.transport is not None
        self._cpu_at_warmup = time.process_time()
        self._instances_at_warmup = self.runtime.modules[0].next_instance
        self._network_at_warmup = self.transport.stats.snapshot()

    # -- reporting ---------------------------------------------------------

    def _drain_samples(self) -> dict | None:
        assert self.sender is not None
        offered_delta = self.sender.offered - self._offered_reported
        if not self._accepts and not self._delivers and offered_delta == 0:
            return None
        self._offered_reported = self.sender.offered
        document = {
            "type": "samples",
            "pid": self.pid,
            "accepts": self._accepts,
            "delivers": self._delivers,
            "offered": offered_delta,
        }
        self._accepts = []
        self._delivers = []
        return document

    def _done_document(self) -> dict:
        assert self.runtime is not None and self.transport is not None
        assert self.sender is not None
        spec = self.spec
        duration = float(spec["duration"])
        network = self.transport.stats.snapshot()
        window_network = {
            key: network[key] - self._network_at_warmup.get(key, 0)
            for key in network
        }
        cpu_busy = time.process_time() - self._cpu_at_warmup
        return {
            "type": "done",
            "pid": self.pid,
            "network": window_network,
            "cpu_utilization": min(1.0, cpu_busy / duration) if duration > 0 else 0.0,
            "instances_at_warmup": self._instances_at_warmup,
            "instances_at_end": self.runtime.modules[0].next_instance,
            "blocked_attempts": self.sender.window.total_blocked,
            "messages_received": self.transport.stats.messages_received,
        }

    # -- main loop ---------------------------------------------------------

    async def run(self) -> int:
        """Execute the worker's whole life cycle; returns an exit code."""
        spec = self.spec
        self.build()
        assert self.runtime is not None and self.transport is not None
        await self.transport.start()

        control_host, control_port = spec["control"]
        reader, writer = await self._connect_control(control_host, int(control_port))
        send_control(writer, {"type": "ready", "pid": self.pid})
        await writer.drain()

        flusher: asyncio.Task | None = None
        try:
            async for document in self._control_messages(reader):
                if document["type"] == "start":
                    self.runtime.set_epoch(float(document["epoch"]))
                    self.runtime.start()
                    self._schedule_arrivals()
                    warmup_in = max(0.0, float(spec["warmup"]) - self.runtime.now)
                    self.runtime.loop.call_later(warmup_in, self._at_warmup_end)
                    flusher = asyncio.create_task(self._flush_loop(writer))
                elif document["type"] == "stop":
                    break
            else:
                # Control channel gone: orchestrator died; don't linger.
                return 1
        finally:
            if flusher is not None:
                flusher.cancel()

        final = self._drain_samples()
        if final is not None:
            send_control(writer, final)
        send_control(writer, self._done_document())
        await writer.drain()
        await self.transport.close()
        writer.close()
        return 0

    async def _connect_control(
        self, host: str, port: int
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        backoff = 0.05
        deadline = time.monotonic() + 10.0
        while True:
            try:
                return await asyncio.open_connection(host, port)
            except OSError:
                if time.monotonic() > deadline:
                    raise
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.5)

    async def _control_messages(self, reader: asyncio.StreamReader):
        decoder = FrameDecoder()
        while True:
            data = await reader.read(64 * 1024)
            if not data:
                return
            for frame in decoder.feed(data):
                yield json.loads(frame.decode("utf-8"))

    async def _flush_loop(self, writer: asyncio.StreamWriter) -> None:
        while True:
            await asyncio.sleep(FLUSH_INTERVAL)
            document = self._drain_samples()
            if document is not None:
                send_control(writer, document)
                await writer.drain()


def main(argv: list[str] | None = None) -> int:
    """Worker entry point: ``python -m repro.live.worker '<spec json>'``."""
    args = argv if argv is not None else sys.argv[1:]
    if len(args) != 1:
        print("usage: python -m repro.live.worker '<spec json>'", file=sys.stderr)
        return 2
    spec = json.loads(args[0])
    return asyncio.run(Worker(spec).run())


if __name__ == "__main__":
    sys.exit(main())
