"""Live deployment orchestrator: spawn workers, measure, reduce.

:func:`run_live` is the live counterpart of
:func:`~repro.experiments.runner.run_simulation`: it takes a
:class:`LiveSpec`, brings up ``n`` worker OS processes (each a
:mod:`repro.live.worker` hosting one unchanged protocol stack over TCP),
drives them through one measurement window and reduces their samples to
the same schema as the simulator's ``RunResult`` (see
:mod:`repro.live.results`).

Sequence:

1. reserve one data port per worker plus a control port (all on
   ``spec.host``, normally localhost);
2. spawn the workers with their spec as a JSON argv; each connects back
   to the control server and says ``ready`` once its listener is up;
3. when all are ready, broadcast ``start`` carrying a single
   ``time.monotonic()`` reading — the shared epoch that makes
   cross-process timestamps comparable (``CLOCK_MONOTONIC`` is
   system-wide on Linux, and the paper's testbed likewise relies on a
   common time base for the early-latency measurement);
4. workers stream ``samples`` batches (accepts, deliveries, offered
   counts) while the orchestrator just buffers them;
5. after warm-up + duration + drain, broadcast ``stop``; every worker
   answers with a ``done`` document of final counters and exits;
6. feed the buffered samples through the *same*
   :class:`~repro.metrics.collector.MetricsCollector` the simulator
   uses, and assemble the result dict.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.config import stack_from_label
from repro.errors import DeploymentError
from repro.live.transport import FrameDecoder, encode_frame
from repro.live.results import live_result_dict
from repro.metrics.collector import MetricsCollector
from repro.obs.attribution import LayerAttribution
from repro.obs.telemetry import summarize_telemetry
from repro.types import AppMessage, MessageId

#: Extra wall-clock seconds after the window closes, letting in-flight
#: messages deliver so late latency samples are not truncated.
DEFAULT_DRAIN = 0.5

#: How long workers get to come up before the deployment is abandoned.
READY_TIMEOUT = 15.0


@dataclass(frozen=True, slots=True)
class LiveSpec:
    """Knobs of one live run (defaults mirror the simulator's)."""

    #: Group size.
    n: int = 3
    #: Stack label: modular, monolithic, indirect or sequencer.
    stack: str = "monolithic"
    #: Offered load in messages/second across the whole group.
    load: float = 100.0
    #: Message payload size in bytes.
    size: int = 1024
    #: Measurement window length in seconds.
    duration: float = 5.0
    #: Warm-up seconds before the window opens.
    warmup: float = 0.5
    #: Flow-control window (own messages in flight per process).
    window: int = 3
    #: Maximum messages ordered per consensus execution.
    max_batch: int | None = 4
    #: Failure detector: "heartbeat" or "none".
    fd: str = "heartbeat"
    #: Workload phase seed (kept for result provenance).
    seed: int = 1
    #: Interface to bind; the default keeps everything on localhost.
    host: str = "127.0.0.1"
    #: Post-window drain seconds.
    drain: float = DEFAULT_DRAIN
    #: Which processes generate load (``None`` = all of them). The
    #: offered load is split across the listed senders only; the
    #: conformance tests use a single sender so the total order is
    #: forced and directly comparable against the simulator's.
    senders: tuple[int, ...] | None = None
    #: Per-peer cap on unacked transport frames; at the cap the
    #: transport signals congestion and the arrival scheduler stalls
    #: (``backpressure_stalls``) instead of growing the queue.
    max_unacked: int = 1024
    #: Cap on the top module's backlog of messages awaiting ordering;
    #: the ordering core's credit contribution to the same gate.
    unordered_cap: int = 512
    #: Directory for per-worker write-ahead delivery logs (crash
    #: recovery); ``None`` disables logging — the fault-free default.
    wal_dir: str | None = None
    #: Logical clients multiplexed onto the worker connections by the
    #: client-fleet driver; 0 keeps the paper's plain symmetric load.
    #: Each worker fronts ``clients / n`` clients on its single control
    #: connection — thousands of logical clients per connection cost
    #: one gap sampler and one Zipf draw per arrival, nothing per
    #: client (see :mod:`repro.workload.population`).
    clients: int = 0
    #: Zipf activity-skew exponent of the fleet (0 = uniform).
    zipf_s: float = 1.1
    #: Aggregate arrival law of the fleet: poisson, bursty or diurnal.
    client_arrival: str = "poisson"
    #: Span-trace ring-buffer capacity per worker; 0 disables tracing
    #: (the default — spans cost memory and control-channel bytes).
    trace_cap: int = 0

    def validate(self) -> None:
        """Reject specs the deployment cannot run."""
        stack_from_label(self.stack)  # raises ConfigurationError
        if self.n < 1:
            raise DeploymentError(f"need at least one process, got n={self.n}")
        if self.load <= 0 or self.duration <= 0:
            raise DeploymentError(
                f"load and duration must be positive: {self.load}, {self.duration}"
            )
        if self.fd not in ("heartbeat", "none"):
            raise DeploymentError(f"unknown live failure detector {self.fd!r}")
        if self.clients < 0:
            raise DeploymentError(f"clients must be >= 0: {self.clients}")
        if self.trace_cap < 0:
            raise DeploymentError(f"trace_cap must be >= 0: {self.trace_cap}")
        if self.clients:
            if self.clients < self.n:
                raise DeploymentError(
                    f"a fleet of {self.clients} clients cannot cover "
                    f"n={self.n} workers (need at least one client each)"
                )
            if self.zipf_s < 0:
                raise DeploymentError(
                    f"zipf exponent must be >= 0: {self.zipf_s}"
                )
            if self.client_arrival not in ("poisson", "bursty", "diurnal"):
                raise DeploymentError(
                    f"unknown client arrival law {self.client_arrival!r}"
                )
        if self.senders is not None:
            if not self.senders:
                raise DeploymentError("senders must name at least one process")
            bad = [pid for pid in self.senders if not 0 <= pid < self.n]
            if bad:
                raise DeploymentError(
                    f"senders {bad} outside the group 0..{self.n - 1}"
                )


def reserve_ports(host: str, count: int) -> list[int]:
    """Pick *count* currently-free TCP ports on *host*.

    The ports are released again before the workers bind them, so this
    is best-effort — fine on a quiet localhost, which is the supported
    deployment target.
    """
    sockets: list[socket.socket] = []
    try:
        for __ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def worker_spec(
    spec: LiveSpec,
    pid: int,
    addresses: dict[int, tuple[str, int]],
    control_port: int,
    *,
    recover: bool = False,
) -> dict:
    """The JSON document handed to one worker on its command line.

    With ``recover=True`` the worker is a restarted incarnation: it
    reloads its write-ahead log (same path as its predecessor) and runs
    the rejoin protocol before taking load.
    """
    wal = None
    if spec.wal_dir is not None:
        wal = os.path.join(spec.wal_dir, f"worker-{pid}.wal")
    return {
        "pid": pid,
        "n": spec.n,
        "stack": spec.stack,
        "load": spec.load,
        "size": spec.size,
        "duration": spec.duration,
        "warmup": spec.warmup,
        "window": spec.window,
        "max_batch": spec.max_batch,
        "fd": spec.fd,
        "seed": spec.seed,
        "senders": list(spec.senders) if spec.senders is not None else None,
        "addresses": {str(p): list(addr) for p, addr in addresses.items()},
        "control": [spec.host, control_port],
        "max_unacked": spec.max_unacked,
        "unordered_cap": spec.unordered_cap,
        "wal": wal,
        "recover": recover,
        "trace_cap": spec.trace_cap,
        "population": (
            {
                "clients": spec.clients,
                "zipf_s": spec.zipf_s,
                "arrival": spec.client_arrival,
            }
            if spec.clients
            else None
        ),
    }


class _ControlServer:
    """Accepts worker control connections and buffers their reports."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.ready: dict[int, asyncio.StreamWriter] = {}
        self.samples: list[dict] = []
        #: Buffered telemetry snapshots, in arrival order (see
        #: :mod:`repro.obs.telemetry` for the schema).
        self.telemetry: list[dict] = []
        self.done: dict[int, dict] = {}
        self.all_ready = asyncio.Event()
        self.all_done = asyncio.Event()
        self._recovered_events: dict[int, asyncio.Event] = {}
        #: The start epoch, once broadcast. A worker restarted by the
        #: nemesis orchestrator re-sends ``ready`` mid-run and must get
        #: the same epoch immediately — all timestamps of one run share
        #: one time origin, first or second incarnation alike.
        self.epoch: float | None = None

    async def handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                for frame in decoder.feed(data):
                    self._dispatch(json.loads(frame.decode("utf-8")), writer)
        except (ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Loop teardown cancels handlers still waiting for EOF after
            # the run reduced; nothing is lost, exit quietly.
            return

    def _dispatch(self, document: dict, writer: asyncio.StreamWriter) -> None:
        kind = document.get("type")
        if kind == "ready":
            pid = int(document["pid"])
            self.ready[pid] = writer
            if len(self.ready) == self.n:
                self.all_ready.set()
            if self.epoch is not None:
                # Late (restarted) worker: the run already started.
                self.send_to(pid, {"type": "start", "epoch": self.epoch})
        elif kind == "samples":
            self.samples.append(document)
        elif kind == "telemetry":
            self.telemetry.append(document)
        elif kind == "recovered":
            self.recovery_event(int(document["pid"])).set()
        elif kind == "done":
            self.done[int(document["pid"])] = document
            if len(self.done) == self.n:
                self.all_done.set()
        else:
            raise DeploymentError(f"unknown control message {document!r}")

    def recovery_event(self, pid: int) -> asyncio.Event:
        """Set once worker *pid* reports WAL recovery complete.

        The nemesis orchestrator waits on it after a scheduled restart:
        fork/exec plus interpreter start-up is real wall-clock time, so
        the restart *instant* says nothing about when the worker is
        actually caught up again.
        """
        return self._recovered_events.setdefault(pid, asyncio.Event())

    def broadcast(self, document: dict) -> None:
        if document.get("type") == "start":
            self.epoch = float(document["epoch"])
        frame = encode_frame(json.dumps(document).encode("utf-8"))
        for writer in self.ready.values():
            self._write(writer, frame)

    def send_to(self, pid: int, document: dict) -> None:
        """Send one directive to one worker (fault injection)."""
        writer = self.ready.get(pid)
        if writer is not None:
            self._write(writer, encode_frame(json.dumps(document).encode("utf-8")))

    @staticmethod
    def _write(writer: asyncio.StreamWriter, frame: bytes) -> None:
        # A killed worker leaves a dead writer behind until its restart
        # re-registers; writing into it must not take the run down.
        try:
            writer.write(frame)
        except (ConnectionError, OSError, RuntimeError):
            pass


def _spawn_worker(document: dict) -> subprocess.Popen:
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(src_root) + os.pathsep + existing if existing else str(src_root)
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.live.worker", json.dumps(document)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        env=env,
    )


def _worker_failure(
    workers: list[subprocess.Popen],
    expected_dead: frozenset[int] | set[int] = frozenset(),
) -> str | None:
    """A description of the first *unexpectedly* dead worker, if any.

    Workers in *expected_dead* were killed on purpose by the fault
    injector (``nemesis --live`` SIGKILLs them, so they show up with a
    negative signal status) and are not failures: their restart is
    already scheduled. Every other nonzero exit — including a scheduled
    victim dying with the wrong status, e.g. a crash *before* its
    SIGKILL landed — aborts the run immediately instead of hanging
    until a timeout.
    """
    for pid, worker in enumerate(workers):
        code = worker.poll()
        if code is None or code == 0:
            continue
        if pid in expected_dead and code == -signal.SIGKILL:
            continue  # fault-injected kill, restart pending
        stderr = b""
        if worker.stderr is not None:
            stderr = worker.stderr.read() or b""
        detail = stderr.decode("utf-8", "replace").strip()
        tail = detail.splitlines()[-8:]
        label = "scheduled-kill worker" if pid in expected_dead else "worker"
        return (
            f"{label} {pid} exited unexpectedly with status {code}"
            + (":\n" + "\n".join(tail) if tail else "")
        )
    return None


async def _wait_event(
    event: asyncio.Event,
    timeout: float,
    workers: list[subprocess.Popen],
    what: str,
    expected_dead: frozenset[int] | set[int] = frozenset(),
) -> None:
    """Wait for *event*, failing fast if a worker process dies."""
    deadline = time.monotonic() + timeout
    while not event.is_set():
        failure = _worker_failure(workers, expected_dead)
        if failure is not None:
            raise DeploymentError(f"while waiting for {what}: {failure}")
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise DeploymentError(f"timed out waiting for {what}")
        try:
            await asyncio.wait_for(event.wait(), min(0.2, remaining))
        except asyncio.TimeoutError:
            continue


async def _monitored_sleep(
    duration: float,
    workers: list[subprocess.Popen],
    expected_dead: frozenset[int] | set[int] = frozenset(),
    poll: float = 0.1,
) -> None:
    """Sleep through the measurement window, watching the workers.

    A worker dying mid-window used to surface only after the final
    report timed out; this polls the processes so an unexpected death
    aborts the run within *poll* seconds, with the worker's stderr.
    """
    deadline = time.monotonic() + duration
    while True:
        failure = _worker_failure(workers, expected_dead)
        if failure is not None:
            raise DeploymentError(f"during the measurement window: {failure}")
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return
        await asyncio.sleep(min(poll, remaining))


def _reduce(
    spec: LiveSpec,
    control: _ControlServer,
    delivery_log: dict[int, list[MessageId]] | None = None,
    observability: dict | None = None,
) -> dict:
    """Feed buffered samples through the simulator's collector.

    When *delivery_log* is given, it is filled with each process's full
    adelivery sequence, in that process's own delivery order (frames of
    one worker arrive FIFO, and batches preserve local order). The log
    stays out of the result dict so the shared sim/live result schema is
    unchanged. *observability*, likewise out of band, is filled with the
    run's telemetry summary and — when the spec traced — the merged
    wall-clock spans (``telemetry``, ``spans``, ``trace_dropped``).
    """
    collector = MetricsCollector(
        spec.n, window_start=spec.warmup, window_end=spec.warmup + spec.duration
    )
    delivers: list[tuple[float, int, MessageId]] = []
    for batch in control.samples:
        pid = int(batch["pid"])
        for __ in range(int(batch.get("offered", 0))):
            collector.on_offered()
        for sender, seq, size, t0 in batch.get("accepts", ()):
            collector.on_accept(
                AppMessage(MessageId(sender, seq), size=size, abcast_time=t0)
            )
        for sender, seq, when in batch.get("delivers", ()):
            delivers.append((when, pid, MessageId(sender, seq)))
            if delivery_log is not None:
                delivery_log.setdefault(pid, []).append(MessageId(sender, seq))
    # Deliveries are replayed in timestamp order so "first delivery of
    # m" means the earliest across processes, regardless of how the
    # per-worker sample batches interleaved on the control channel.
    for when, pid, msg_id in sorted(delivers):
        collector.on_adeliver(pid, AppMessage(msg_id, size=0, abcast_time=0.0), when)

    blocked = sum(int(d.get("blocked_attempts", 0)) for d in control.done.values())
    stalls = sum(
        int(d.get("backpressure_stalls", 0)) for d in control.done.values()
    )
    active_clients = sum(
        int(d.get("active_clients", 0)) for d in control.done.values()
    )
    crossings = sum(
        int(d.get("boundary_crossings", 0)) for d in control.done.values()
    )
    metrics = collector.finalize(
        blocked_attempts=blocked,
        backpressure_stalls=stalls,
        active_clients=active_clients,
        # Live processes count crossings but have no modelled CPU, so
        # the attribution carries a crossing count and zero time.
        attribution=LayerAttribution.from_totals({}, 0.0, crossings),
    )
    if observability is not None:
        observability["telemetry"] = summarize_telemetry(control.telemetry)
        spans: list[list] = []
        for document in control.done.values():
            spans.extend(document.get("spans", ()))
        spans.sort(key=lambda row: (row[0], row[2]))
        observability["spans"] = spans
        observability["trace_dropped"] = sum(
            int(d.get("trace_dropped", 0)) for d in control.done.values()
        )

    network: dict[str, int] = {}
    for document in control.done.values():
        for key, value in document.get("network", {}).items():
            network[key] = network.get(key, 0) + int(value)
    instances = max(
        int(d.get("instances_at_end", 0)) for d in control.done.values()
    ) - max(int(d.get("instances_at_warmup", 0)) for d in control.done.values())
    cpu = [
        float(control.done[pid].get("cpu_utilization", 0.0))
        for pid in sorted(control.done)
    ]
    return live_result_dict(
        spec,
        metrics,
        network=network,
        cpu_utilization=cpu,
        instances_decided=instances,
    )


async def _run_live_async(
    spec: LiveSpec,
    delivery_log: dict[int, list[MessageId]] | None = None,
    observability: dict | None = None,
) -> dict:
    ports = reserve_ports(spec.host, spec.n)
    addresses = {pid: (spec.host, ports[pid]) for pid in range(spec.n)}

    control = _ControlServer(spec.n)
    server = await asyncio.start_server(control.handle, spec.host, 0)
    control_port = server.sockets[0].getsockname()[1]

    workers: list[subprocess.Popen] = []
    try:
        for pid in range(spec.n):
            workers.append(
                _spawn_worker(worker_spec(spec, pid, addresses, control_port))
            )

        await _wait_event(control.all_ready, READY_TIMEOUT, workers, "workers ready")
        control.broadcast({"type": "start", "epoch": time.monotonic()})
        await _monitored_sleep(spec.warmup + spec.duration + spec.drain, workers)
        control.broadcast({"type": "stop"})
        await _wait_event(
            control.all_done, READY_TIMEOUT, workers, "final worker reports"
        )
    finally:
        server.close()
        await server.wait_closed()
        for worker in workers:
            if worker.poll() is None:
                worker.terminate()
        for worker in workers:
            try:
                worker.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()
            if worker.stderr is not None:
                worker.stderr.close()

    return _reduce(spec, control, delivery_log, observability)


def run_live(
    spec: LiveSpec,
    *,
    delivery_log: dict[int, list[MessageId]] | None = None,
    observability: dict | None = None,
) -> dict:
    """Deploy *spec* on localhost, run one measurement, return the result.

    Blocking convenience wrapper; roughly ``warmup + duration + drain``
    seconds of wall-clock time plus process start-up. Pass a dict as
    *delivery_log* to additionally capture every process's adelivery
    sequence (pid → ordered list of message ids) out of band; pass one
    as *observability* to capture the telemetry summary and (with
    ``trace_cap`` set) the merged wall-clock spans.

    Raises:
        DeploymentError: When workers die, never become ready, or stop
            reporting.
        ConfigurationError: For an unknown stack label.
    """
    spec.validate()
    return asyncio.run(_run_live_async(spec, delivery_log, observability))
