"""Sim-vs-live comparison: one config, both execution modes.

Runs the same (stack, n, load, size, duration, warmup) once through the
virtual-time simulator and once over real TCP between OS processes, and
renders both results side by side. The comparison is the point of the
live runtime: the simulator's *modelled* CPU and network costs predict
trends (modularity overhead, saturation points); the live run shows what
the identical protocol code does on a real host, where costs are
whatever the hardware charges.

Numbers are expected to differ — the simulator charges the calibrated
per-message costs of the paper's 2007-era testbed, not this machine's —
so read the table for shape (ordering of stacks, latency floors, whether
throughput tracks offered load), not for digit-level agreement.
"""

from __future__ import annotations

from repro.config import (
    FailureDetectorConfig,
    FailureDetectorKind,
    FlowControlConfig,
    RunConfig,
    WorkloadConfig,
    stack_from_label,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_simulation
from repro.live.deploy import LiveSpec, run_live
from repro.live.results import sim_result_to_dict


def matched_run_config(spec: LiveSpec) -> RunConfig:
    """The simulator configuration equivalent to a live spec.

    The simulated failure detector is the heartbeat one (the only kind
    that also exists live), so both modes pay the same FD traffic.
    """
    return RunConfig(
        n=spec.n,
        stack=stack_from_label(spec.stack),
        workload=WorkloadConfig(offered_load=spec.load, message_size=spec.size),
        flow_control=FlowControlConfig(window=spec.window, max_batch=spec.max_batch),
        failure_detector=FailureDetectorConfig(kind=FailureDetectorKind.HEARTBEAT),
        duration=spec.duration,
        warmup=spec.warmup,
    )


def run_comparison(spec: LiveSpec, *, seed: int | None = None) -> dict:
    """Run sim and live with matched parameters; returns both results."""
    sim = run_simulation(matched_run_config(spec), seed if seed is not None else spec.seed)
    live = run_live(spec)
    return {"sim": sim_result_to_dict(sim), "live": live}


def _fmt_ms(value: float | None) -> str:
    return f"{value * 1e3:.2f}" if value is not None else "n/a"


def comparison_table(results: dict) -> str:
    """Render a ``run_comparison`` result as an aligned text table."""
    sim, live = results["sim"], results["live"]
    rows = [
        ("throughput (msgs/s)", "{:.1f}", lambda r: r["metrics"]["throughput"]),
        ("offered rate (msgs/s)", "{:.1f}", lambda r: r["metrics"]["offered_rate"]),
        ("early latency mean (ms)", None, lambda r: _fmt_ms(r["metrics"]["latency_mean"])),
        ("early latency p95 (ms)", None, lambda r: _fmt_ms(r["metrics"]["latency_p95"])),
        ("latency samples", "{}", lambda r: r["metrics"]["latency_count"]),
        ("consensus instances", "{}", lambda r: r["instances_decided"]),
        ("net messages sent", "{}", lambda r: r["network"].get("messages_sent", 0)),
        (
            "net payload bytes",
            "{}",
            lambda r: r["network"].get("payload_bytes_sent", 0),
        ),
        (
            "mean cpu utilization",
            "{:.3f}",
            lambda r: sum(r["cpu_utilization"]) / max(1, len(r["cpu_utilization"])),
        ),
        ("blocked attempts", "{}", lambda r: r["metrics"]["blocked_attempts"]),
    ]
    table_rows = []
    for label, fmt, extract in rows:
        cells = []
        for result in (sim, live):
            value = extract(result)
            cells.append(fmt.format(value) if fmt is not None else value)
        table_rows.append([label, *cells])
    config = live["config"]
    title = (
        f"stack={config['stack']} n={config['n']} load={config['load']:g} "
        f"size={config['message_size']} duration={config['duration']:g}s"
    )
    return title + "\n" + format_table(["metric", "sim", "live"], table_rows)
