"""One result schema for simulated and live runs.

The simulator returns a :class:`~repro.experiments.runner.RunResult`;
the live orchestrator measures the same quantities but has no
:class:`~repro.config.RunConfig` (its knobs travel as a
:class:`~repro.live.deploy.LiveSpec`). Both reduce to the same plain
dictionary here so downstream tooling — JSON output, the sim-vs-live
comparison report — never branches on where a number came from:

``mode``
    ``"sim"`` or ``"live"``.
``config``
    The run's knobs: ``n``, ``stack``, ``load``, ``message_size``,
    ``duration``, ``warmup``.
``metrics``
    A :class:`~repro.metrics.collector.RunMetrics` as a dict.
``network``
    Counters over the measurement window. Both modes report
    ``messages_sent`` / ``bytes_sent`` / ``payload_bytes_sent``; each
    mode may add counters only it can know (the simulator's queueing
    stats, the transport's ``reconnects``).
``cpu_utilization``
    Per-process busy fraction over the window — modelled CPU cost in
    the simulator, OS-reported process time live.
``instances_decided`` / ``events_executed``
    Consensus instances decided in the window; kernel events executed
    (diagnostics; always 0 live, where there is no kernel).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import TYPE_CHECKING

from repro.metrics.collector import RunMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.runner import RunResult
    from repro.live.deploy import LiveSpec

#: The stack label used for a modular stack with indirect consensus.
_INDIRECT_LABEL = "indirect"


def metrics_to_dict(metrics: RunMetrics) -> dict:
    """A :class:`RunMetrics` as a JSON-ready dict."""
    return asdict(metrics)


def sim_result_to_dict(result: "RunResult") -> dict:
    """Reduce a simulator :class:`RunResult` to the shared schema."""
    from repro.config import ConsensusVariant, StackKind

    stack = result.config.stack
    if stack.kind is StackKind.MODULAR and stack.consensus is ConsensusVariant.INDIRECT:
        label = _INDIRECT_LABEL
    else:
        label = stack.kind.value
    return {
        "mode": "sim",
        "config": {
            "n": result.config.n,
            "stack": label,
            "load": result.config.workload.offered_load,
            "message_size": result.config.workload.message_size,
            "duration": result.config.duration,
            "warmup": result.config.warmup,
        },
        "seed": result.seed,
        "metrics": metrics_to_dict(result.metrics),
        "network": dict(result.network),
        "cpu_utilization": list(result.cpu_utilization),
        "instances_decided": result.instances_decided,
        "events_executed": result.events_executed,
    }


def live_result_dict(
    spec: "LiveSpec",
    metrics: RunMetrics,
    *,
    network: dict,
    cpu_utilization: list[float],
    instances_decided: int,
) -> dict:
    """Assemble a live run's measurements in the shared schema."""
    return {
        "mode": "live",
        "config": {
            "n": spec.n,
            "stack": spec.stack,
            "load": spec.load,
            "message_size": spec.size,
            "duration": spec.duration,
            "warmup": spec.warmup,
        },
        "seed": spec.seed,
        "metrics": metrics_to_dict(metrics),
        "network": network,
        "cpu_utilization": cpu_utilization,
        "instances_decided": instances_decided,
        "events_executed": 0,
    }
