"""Write-ahead delivery log for live workers (crash recovery).

Each live worker appends its measurement-relevant state transitions to
one append-only log file so a SIGKILLed worker can be restarted and
rejoin the group without violating the abcast contract (see
PROTOCOLS.md, "Crash recovery"). Three record types exist:

* ``accept`` — one of this worker's own messages entered the stack.
  Written *and fsynced before* the matching
  :class:`~repro.stack.events.AbcastRequest` is injected (true
  write-ahead: a message can never be on the wire without its accept
  record being durable — the merged-log integrity check depends on it).
* ``deliver`` — one message was adelivered locally, with the top
  module's next consensus instance after the delivery. Buffered and
  fsynced in batches (the periodic flush), so a crash may lose a
  *suffix* of deliveries — which state transfer re-fetches — but never
  reorders or invents one.
* ``resume`` — a snapshot of the transport's per-peer delivered frame
  counts (the reconnect resume points). Last one wins on recovery.

Framing: every record is ``[4-byte BE length][4-byte BE CRC32][JSON
body]``. A crash can tear the tail of the file mid-record (partial
write, or a page of garbage after a power cut); :func:`recover_wal`
scans from the front and truncates the file at the first incomplete or
corrupt record, keeping the longest valid prefix. Records before the
torn tail were fsynced in order, so the prefix is exactly the state the
worker is entitled to claim.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DeploymentError

_HEADER = struct.Struct(">II")  # (body length, CRC32 of body)

#: Refuse record bodies bigger than this on read: a corrupt length
#: prefix must not ask the reader to allocate gigabytes.
MAX_RECORD_SIZE = 16 * 1024 * 1024


def encode_record(record: dict) -> bytes:
    """Frame one record for the log: length + CRC32 + JSON body."""
    body = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[dict], int]:
    """Parse every valid record at the front of *data*.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the
    offset of the first incomplete or corrupt record (== ``len(data)``
    when the whole buffer parsed). Everything from that offset on is a
    torn tail: recovery truncates it and proceeds with the prefix.
    """
    records: list[dict] = []
    offset = 0
    total = len(data)
    while total - offset >= _HEADER.size:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_SIZE or start + length > total:
            break  # torn or corrupt length prefix
        body = data[start : start + length]
        if zlib.crc32(body) != crc:
            break  # corrupt body
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break  # CRC collision on garbage; treat as torn
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = start + length
    return records, offset


class WalWriter:
    """Appends framed records to a log file, fsyncing in batches.

    ``append(record, sync=True)`` makes the record (and everything
    buffered before it) durable before returning — used for ``accept``
    records, which must hit the disk before the message hits the wire.
    ``append(record)`` only buffers; the worker's periodic flush loop
    calls :meth:`flush` to batch the fsyncs (one per ~250 ms instead of
    one per delivery).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = open(self.path, "ab")
        self._buffer = bytearray()
        #: Number of fsyncs issued (a telemetry counter: the worker's
        #: durability cost, surfaced on the control channel).
        self.fsyncs = 0

    def append(self, record: dict, *, sync: bool = False) -> None:
        """Buffer one record; with ``sync=True``, make it durable now."""
        self._buffer += encode_record(record)
        if sync:
            self.flush()

    def flush(self) -> None:
        """Write every buffered record and fsync the file."""
        if not self._buffer:
            return
        self._file.write(self._buffer)
        self._buffer.clear()
        self._file.flush()
        os.fsync(self._file.fileno())
        self.fsyncs += 1

    def close(self) -> None:
        """Flush outstanding records and close the file."""
        try:
            self.flush()
        finally:
            self._file.close()


def read_wal(path: str | Path) -> tuple[list[dict], int]:
    """Read a log file; returns ``(records, torn_tail_bytes)``.

    Missing file reads as empty (a worker killed before its first
    append leaves no file). Never modifies the file — use
    :func:`recover_wal` at worker restart, where the torn tail must
    also be removed before appending resumes.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return [], 0
    records, valid = decode_records(data)
    return records, len(data) - valid


def recover_wal(path: str | Path) -> tuple[list[dict], int]:
    """Like :func:`read_wal`, but truncates the torn tail in place.

    The log must end exactly at the last valid record before a
    restarted worker appends new ones — otherwise the next append would
    splice valid frames after garbage and strand them forever.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    records, valid = decode_records(data)
    torn = len(data) - valid
    if torn:
        with open(path, "r+b") as handle:
            handle.truncate(valid)
    return records, torn


@dataclass
class WalState:
    """The recovered state a restarted worker resumes from."""

    #: Locally adelivered (sender, seq) pairs, in delivery order.
    delivered: list[tuple[int, int]] = field(default_factory=list)
    #: Own messages accepted into the stack: (sender, seq, abcast_time).
    accepted: list[tuple[int, int, float]] = field(default_factory=list)
    #: Transport resume points from the latest snapshot record:
    #: ``peer -> (incarnation nonce, delivered frame count)``.
    resume_counts: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: The top module's next consensus instance after the last logged
    #: delivery (0 for an empty log).
    next_instance: int = 0

    @property
    def delivered_set(self) -> set[tuple[int, int]]:
        """The delivered pairs as a set (dedup / membership checks)."""
        return set(self.delivered)

    def max_own_seq(self, pid: int) -> int:
        """Highest own sequence number ever accepted (-1 if none)."""
        own = [q for s, q, __ in self.accepted if s == pid]
        return max(own) if own else -1

    @classmethod
    def from_records(cls, records: list[dict]) -> "WalState":
        """Fold a parsed record list into the resumable state."""
        state = cls()
        seen: set[tuple[int, int]] = set()
        for record in records:
            kind = record.get("t")
            if kind == "accept":
                state.accepted.append(
                    (int(record["s"]), int(record["q"]), float(record.get("at", 0.0)))
                )
            elif kind == "deliver":
                pair = (int(record["s"]), int(record["q"]))
                if pair in seen:
                    continue  # re-synced after a partial flush; keep first
                seen.add(pair)
                state.delivered.append(pair)
                state.next_instance = max(
                    state.next_instance, int(record.get("i", 0))
                )
            elif kind == "resume":
                state.resume_counts = {
                    int(peer): (int(nonce), int(count))
                    for peer, (nonce, count) in record.get("counts", {}).items()
                }
            else:
                raise DeploymentError(f"unknown WAL record type {kind!r}")
        return state


def load_wal_state(path: str | Path) -> tuple[WalState, int]:
    """Recover a log file and fold it: ``(state, torn_tail_bytes)``."""
    records, torn = recover_wal(path)
    return WalState.from_records(records), torn
