"""Asyncio TCP transport: framing, per-peer FIFO streams, reconnect.

Mirrors the channel model the stacks assume (and the simulator's
:class:`~repro.net.network.Network` provides): quasi-reliable FIFO
channels between every pair of processes, as TCP gives the paper's
Fortika testbed.

Topology: every process listens on one TCP port and additionally dials
one *outgoing* connection per peer, used exclusively for its own sends
to that peer. Inbound connections are receive-only. A single writer
task per peer drains a FIFO queue, which makes per-(src, dst) ordering
structural rather than accidental.

Framing: each frame is a 4-byte big-endian length prefix followed by
the body (see :func:`encode_frame` / :class:`FrameDecoder`; the decoder
is a plain incremental parser so framing is testable without sockets).
The first frame on every outgoing connection is a HELLO identifying the
dialing process and the wire-format version; everything after is an
encoded :class:`~repro.net.message.NetMessage`.

Failure handling: a failed dial or a broken connection triggers
reconnection with exponential backoff (capped). Delivery is exactly-once
and in-order across reconnects, via a cumulative-ack protocol layered on
the per-peer stream: the receiver answers every HELLO with the number of
frames it has delivered from that peer (the *resume point*) and streams
cumulative acks back as frames arrive; the sender dequeues a frame only
once acked and, after reconnecting, resumes transmission exactly at the
receiver's resume point. TCP alone cannot give this — a write into a
connection whose peer already vanished "succeeds" into the socket
buffer — which is why the ack layer exists. An outage therefore delays
messages rather than dropping or duplicating them, the quasi-reliable
FIFO channel the protocol stacks assume.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import struct
from collections import deque
from typing import Callable

from repro.errors import NetworkError
from repro.net.message import NetMessage, decode_message, encode_message
from repro.net.wire import WIRE_FORMAT_VERSION, check_version

#: Refuse frames bigger than this (a corrupt length prefix otherwise
#: asks the decoder to buffer gigabytes).
MAX_FRAME_SIZE = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Cumulative frame counts exchanged by the ack protocol.
_COUNT = struct.Struct(">Q")

#: Callback invoked with every decoded protocol message.
MessageHandler = Callable[[NetMessage], None]

#: ``REPRO_LIVE_TRACE=1`` narrates connection/handshake events on
#: stderr (same switch as the worker's recovery trace).
_TRACE = bool(os.environ.get("REPRO_LIVE_TRACE"))


def _trace(pid: int, text: str) -> None:
    if _TRACE:
        import sys
        import time

        print(
            f"[transport {pid} t={time.monotonic():.3f}] {text}",
            file=sys.stderr,
            flush=True,
        )


def next_backoff(
    rng: random.Random, initial: float, previous: float, cap: float
) -> float:
    """Decorrelated-jitter reconnect backoff.

    Draws the next delay uniformly from ``[initial, 3 * previous]``,
    capped at *cap* — the "decorrelated jitter" strategy. Unlike plain
    doubling, two peers cut off by the same partition draw different
    delays and do not redial in lockstep when it heals (a reconnection
    storm every ``initial * 2^k`` seconds); unlike full jitter, the
    expected delay still grows geometrically while the outage lasts.
    """
    return min(cap, rng.uniform(initial, max(initial, previous * 3.0)))


def encode_frame(body: bytes) -> bytes:
    """Length-prefix *body* for the stream."""
    if len(body) > MAX_FRAME_SIZE:
        raise NetworkError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_SIZE}")
    return _LENGTH.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser tolerant of split and coalesced reads.

    TCP is a byte stream: one ``read()`` may return half a frame or
    twelve frames and a half. Feed whatever arrives; complete frames
    come out, the remainder stays buffered.
    """

    def __init__(self, max_frame: int = MAX_FRAME_SIZE) -> None:
        self._buffer = bytearray()
        self._max_frame = max_frame

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb *data*; return every frame it completed, in order."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while len(self._buffer) >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self._max_frame:
                raise NetworkError(
                    f"incoming frame of {length} bytes exceeds {self._max_frame}"
                )
            if len(self._buffer) < _LENGTH.size + length:
                break
            start = _LENGTH.size
            frames.append(bytes(self._buffer[start : start + length]))
            del self._buffer[: start + length]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)


def hello_frame(pid: int, nonce: int = 0) -> bytes:
    """The identification frame opening every outgoing connection.

    *nonce* identifies the sending endpoint's *incarnation*: it is drawn
    once per Transport construction, so every connection from one
    process lifetime carries the same nonce, and a restarted process
    (crash recovery) presents a new one. The receiver uses a nonce
    change to reset its delivered-frame count — the new incarnation's
    outbound stream starts over at frame zero, and resuming it at the
    predecessor's count would silently swallow its first messages.
    """
    return json.dumps(
        {"v": WIRE_FORMAT_VERSION, "hello": pid, "nonce": nonce}
    ).encode("utf-8")


def parse_hello(frame: bytes) -> tuple[int, int]:
    """Validate a HELLO frame; returns (dialing pid, incarnation nonce)."""
    try:
        document = json.loads(frame.decode("utf-8"))
        check_version(document.get("v"))
        return int(document["hello"]), int(document.get("nonce", 0))
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, ValueError) as exc:
        raise NetworkError(f"malformed transport HELLO: {exc}") from exc


class TransportStats:
    """Mutable per-transport counters (schema mirrors NetworkStats)."""

    def __init__(self) -> None:
        self.messages_sent = 0
        self.bytes_sent = 0
        self.payload_bytes_sent = 0
        self.messages_received = 0
        self.reconnects = 0
        self.messages_dropped = 0

    def snapshot(self) -> dict:
        """A plain-dict copy for control-channel reporting."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "messages_received": self.messages_received,
            "reconnects": self.reconnects,
            "messages_dropped": self.messages_dropped,
        }


class Transport:
    """One process's TCP endpoint in a live group.

    Args:
        pid: This process's identifier.
        addresses: ``pid -> (host, port)`` for the whole group, this
            process included (that entry is where we listen).
        on_message: Called in the event loop with every decoded message.
        initial_backoff: First reconnect delay in seconds.
        max_backoff: Backoff cap in seconds.
        resume_points: ``peer -> (incarnation nonce, delivered count)``
            restored from a previous incarnation's WAL snapshot (crash
            recovery): a restarted endpoint answers reconnecting peers
            with these counts, so frames its predecessor already
            delivered are not replayed into the recovered stack. The
            stored nonce keeps the count scoped to the peer incarnation
            it was observed against.
        max_unacked: Per-peer cap on frames queued but not yet acked;
            :attr:`congested` turns true while any queue is at or above
            it. The transport itself never blocks or drops — the cap is
            a *credit signal* the arrival scheduler consults before
            offering more load (see PROTOCOLS.md, "Backpressure").
        rng: Randomness for the reconnect jitter (injectable for tests).
    """

    def __init__(
        self,
        pid: int,
        addresses: dict[int, tuple[str, int]],
        on_message: MessageHandler,
        *,
        initial_backoff: float = 0.05,
        max_backoff: float = 1.0,
        resume_points: dict[int, tuple[int, int]] | None = None,
        max_unacked: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if pid not in addresses:
            raise NetworkError(f"addresses lack an entry for this process ({pid})")
        self.pid = pid
        self.stats = TransportStats()
        self.max_unacked = max_unacked
        self._addresses = dict(addresses)
        self._on_message = on_message
        self._initial_backoff = initial_backoff
        self._max_backoff = max_backoff
        self._rng = rng if rng is not None else random.Random()
        #: This endpoint's incarnation identity, presented in every
        #: HELLO. Drawn from the OS, not self._rng: a restarted worker
        #: reseeds the same (seed, pid) rng and MUST still get a nonce
        #: its predecessor never used.
        self.nonce = int.from_bytes(os.urandom(8), "big")
        self._queues: dict[int, deque[bytes]] = {
            peer: deque() for peer in addresses if peer != pid
        }
        #: Global stream index of ``_queues[peer][0]`` — how many frames
        #: to this peer have been acked (and dequeued) so far.
        self._send_base: dict[int, int] = {peer: 0 for peer in self._queues}
        #: How many frames from each peer were delivered to ``on_message``;
        #: persists across that peer's reconnects (the resume point),
        #: scoped to the peer incarnation in ``_peer_nonce``.
        self._delivered: dict[int, int] = {}
        self._peer_nonce: dict[int, int] = {}
        for peer, (nonce, count) in (resume_points or {}).items():
            self._peer_nonce[peer] = nonce
            self._delivered[peer] = count
        self._queue_events: dict[int, asyncio.Event] = {}
        self._server: asyncio.base_events.Server | None = None
        self._sender_tasks: list[asyncio.Task] = []
        self._inbound_writers: set[asyncio.StreamWriter] = set()
        self._closed = False
        #: Peers whose outbound frames are held back (fault injection:
        #: HOLD-mode partition — frames queue up and flow on release).
        self._held: set[int] = set()
        #: Peers whose outbound frames are discarded (DROP-mode).
        self._dropped: set[int] = set()
        #: Per-peer (extra_delay, jitter) slept before each frame write
        #: (fault injection: delay spikes).
        self._extra_delay: dict[int, tuple[float, float]] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and begin dialing every peer."""
        host, port = self._addresses[self.pid]
        self._server = await asyncio.start_server(self._handle_inbound, host, port)
        for peer in self._queues:
            self._queue_events[peer] = asyncio.Event()
            task = asyncio.create_task(
                self._sender_loop(peer), name=f"transport.p{self.pid}->p{peer}"
            )
            self._sender_tasks.append(task)

    async def close(self) -> None:
        """Stop dialing, close the server and every open connection."""
        self._closed = True
        for event in self._queue_events.values():
            event.set()
        for task in self._sender_tasks:
            task.cancel()
        await asyncio.gather(*self._sender_tasks, return_exceptions=True)
        self._sender_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._inbound_writers):
            writer.close()
        self._inbound_writers.clear()

    @property
    def listen_port(self) -> int:
        """The actual bound port (useful when configured with port 0)."""
        if self._server is None:
            raise NetworkError("transport is not started")
        return self._server.sockets[0].getsockname()[1]

    # -- sending -----------------------------------------------------------

    def send(self, message: NetMessage) -> None:
        """Enqueue *message* for its destination (never blocks).

        FIFO per destination: the peer's single writer task transmits
        queued frames strictly in ``send()`` call order.
        """
        if self._closed:
            return
        queue = self._queues.get(message.dst)
        if queue is None:
            raise NetworkError(f"message to unknown process: {message}")
        if message.dst in self._dropped:
            self.stats.messages_dropped += 1
            return
        frame = encode_frame(encode_message(message))
        queue.append(frame)
        self.stats.messages_sent += 1
        self.stats.bytes_sent += message.wire_size
        self.stats.payload_bytes_sent += message.payload_size
        event = self._queue_events.get(message.dst)
        if event is not None:
            event.set()

    def pending_to(self, peer: int) -> int:
        """Frames queued for *peer* but not yet accepted by the kernel."""
        return len(self._queues[peer])

    def unacked_to(self, peer: int) -> int:
        """Frames to *peer* not yet acked by its receiver (== queued)."""
        return len(self._queues[peer])

    @property
    def congested(self) -> bool:
        """Whether any peer's unacked queue is at the configured cap.

        The transport's credit signal: while true, the worker's arrival
        scheduler stops offering load (counting ``backpressure_stalls``)
        instead of growing an unbounded frame queue toward a slow or
        partitioned peer.
        """
        if self.max_unacked is None:
            return False
        return any(len(queue) >= self.max_unacked for queue in self._queues.values())

    def delivered_counts(self) -> dict[int, tuple[int, int]]:
        """``peer -> (nonce, delivered count)`` — the WAL resume snapshot."""
        return {
            peer: (self._peer_nonce.get(peer, 0), count)
            for peer, count in self._delivered.items()
        }

    # -- fault injection hooks (driven by `repro nemesis --live`) ----------

    def hold_links(self, peers: set[int] | frozenset[int]) -> None:
        """Stop transmitting to *peers*; frames queue until release.

        The live form of a HOLD-mode partition: channels stay
        quasi-reliable (nothing is lost, everything is late), matching
        the simulator's semantics so the same faultload is comparable.
        """
        self._held.update(peers)

    def release_links(self, peers: set[int] | frozenset[int]) -> None:
        """Heal a HOLD: resume transmitting queued frames to *peers*."""
        self._held.difference_update(peers)
        for peer in peers:
            event = self._queue_events.get(peer)
            if event is not None:
                event.set()

    def drop_links(self, peers: set[int] | frozenset[int]) -> None:
        """Silently discard every new frame to *peers* (DROP mode)."""
        self._dropped.update(peers)

    def undrop_links(self, peers: set[int] | frozenset[int]) -> None:
        """Stop discarding frames to *peers*."""
        self._dropped.difference_update(peers)

    def set_link_delay(
        self, peers: set[int] | frozenset[int], extra: float, jitter: float = 0.0
    ) -> None:
        """Sleep ``extra + U(0, jitter)`` before each frame to *peers*."""
        for peer in peers:
            self._extra_delay[peer] = (extra, jitter)

    def clear_link_delay(self, peers: set[int] | frozenset[int]) -> None:
        """Remove the extra per-frame delay towards *peers*."""
        for peer in peers:
            self._extra_delay.pop(peer, None)

    async def drain(self, timeout: float = 5.0, poll: float = 0.01) -> bool:
        """Wait until every send queue is empty (best effort)."""
        deadline = asyncio.get_running_loop().time() + timeout
        while any(self._queues.values()):
            if asyncio.get_running_loop().time() > deadline:
                return False
            await asyncio.sleep(poll)
        return True

    def _apply_ack(self, peer: int, count: int) -> None:
        """Dequeue every frame the receiver has now delivered."""
        queue = self._queues[peer]
        while self._send_base[peer] < count and queue:
            queue.popleft()
            self._send_base[peer] += 1

    async def _ack_loop(self, peer: int, reader: asyncio.StreamReader) -> None:
        """Consume cumulative acks until the connection dies."""
        while True:
            data = await reader.readexactly(_COUNT.size)
            (count,) = _COUNT.unpack(data)
            self._apply_ack(peer, count)

    async def _sender_loop(self, peer: int) -> None:
        queue = self._queues[peer]
        event = self._queue_events[peer]
        backoff = self._initial_backoff
        while not self._closed:
            host, port = self._addresses[peer]
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = next_backoff(
                    self._rng, self._initial_backoff, backoff, self._max_backoff
                )
                continue
            backoff = self._initial_backoff
            ack_task: asyncio.Task | None = None
            try:
                writer.write(encode_frame(hello_frame(self.pid, self.nonce)))
                await writer.drain()
                # The receiver opens with its resume point: how many of
                # our frames it has delivered. Anything below it was
                # received even if the ack got lost with the previous
                # connection; transmission restarts exactly there, so
                # the stream is exactly-once and in-order end to end.
                (resume,) = _COUNT.unpack(await reader.readexactly(_COUNT.size))
                _trace(
                    self.pid,
                    f"connected to p{peer}: resume={resume} "
                    f"base={self._send_base[peer]} queued={len(queue)}",
                )
                self._apply_ack(peer, resume)
                # A resume point below our base means the peer endpoint
                # is fresh (fail-stop processes do not restart; a new
                # endpoint at the old address starts a new incarnation):
                # frames already acked by the predecessor are gone, so
                # transmission continues from the first unacked frame.
                next_to_send = max(resume, self._send_base[peer])
                ack_task = asyncio.create_task(self._ack_loop(peer, reader))
                while not self._closed:
                    if ack_task.done():
                        raise ConnectionResetError("peer closed the connection")
                    offset = next_to_send - self._send_base[peer]
                    if peer in self._held or offset >= len(queue):
                        event.clear()
                        waiter = asyncio.create_task(event.wait())
                        try:
                            await asyncio.wait(
                                {waiter, ack_task},
                                return_when=asyncio.FIRST_COMPLETED,
                            )
                        finally:
                            waiter.cancel()
                        continue
                    pause = self._extra_delay.get(peer)
                    if pause is not None:
                        extra, jitter = pause
                        await asyncio.sleep(extra + self._rng.uniform(0.0, jitter))
                        # Acks land during the sleep and advance the
                        # base; the offset computed before it would now
                        # index past the next frame — transmitting
                        # queue[stale offset] silently skips frames,
                        # and a skipped frame is lost forever (the
                        # stream has no other retransmission path).
                        offset = next_to_send - self._send_base[peer]
                        if offset >= len(queue):
                            continue
                    writer.write(queue[offset])
                    next_to_send += 1
                    await writer.drain()
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                self.stats.reconnects += 1
                await asyncio.sleep(backoff)
                backoff = next_backoff(
                    self._rng, self._initial_backoff, backoff, self._max_backoff
                )
            finally:
                if ack_task is not None:
                    ack_task.cancel()
                writer.close()

    # -- receiving ---------------------------------------------------------

    async def _handle_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inbound_writers.add(writer)
        decoder = FrameDecoder()
        peer: int | None = None
        try:
            while not self._closed:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                progressed = False
                for frame in decoder.feed(data):
                    if peer is None:
                        peer, nonce = parse_hello(frame)
                        _trace(
                            self.pid,
                            f"inbound hello from p{peer}: nonce "
                            f"{'match' if self._peer_nonce.get(peer) == nonce else 'NEW'}"
                            f", resume={self._delivered.get(peer, 0) if self._peer_nonce.get(peer) == nonce else 0}",
                        )
                        if self._peer_nonce.get(peer) != nonce:
                            # New peer incarnation (first contact, or a
                            # crash-recovered restart): its stream
                            # starts over at frame zero. The recovered
                            # stack layer dedups re-sent messages.
                            self._peer_nonce[peer] = nonce
                            self._delivered[peer] = 0
                        # Resume point: how many of this incarnation's
                        # frames were already delivered (over any
                        # connection).
                        writer.write(_COUNT.pack(self._delivered.get(peer, 0)))
                        continue
                    self._delivered[peer] = self._delivered.get(peer, 0) + 1
                    self.stats.messages_received += 1
                    progressed = True
                    self._on_message(decode_message(frame))
                if progressed:
                    # One cumulative ack per read chunk, not per frame.
                    writer.write(_COUNT.pack(self._delivered[peer]))
                await writer.drain()
        except (ConnectionError, OSError):
            return
        finally:
            self._inbound_writers.discard(writer)
            writer.close()
