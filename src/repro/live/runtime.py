"""Wall-clock protocol runtime on the asyncio event loop.

:class:`LiveRuntime` is the live twin of
:class:`~repro.stack.runtime.ProcessRuntime`: it satisfies the same
:class:`~repro.stack.interface.RuntimeProtocol` contract, so protocol
modules, failure detectors and the flow-controlled workload generator
run on it without a single change. The differences are exactly the ones
the contract abstracts away:

* **time** — ``now`` is wall-clock seconds since the deployment epoch
  (a shared ``time.monotonic`` reference distributed by the
  orchestrator), not simulated seconds; timer *delays* carry over 1:1;
* **cost** — nothing charges modelled CPU time; handlers simply take as
  long as they take on the host CPU;
* **transport** — sends go through a real TCP
  :class:`~repro.live.transport.Transport` instead of the simulated
  network (header sizes are computed with the same Cactus header
  stacking formula, so wire accounting stays comparable);
* **crash** — fail-stop means the OS process exits (configurable via
  ``on_crash`` so tests can observe a crash without dying).

Thread model: everything runs on one asyncio event loop; handlers are
executed synchronously inside transport/timer callbacks, which preserves
the run-to-completion semantics modules were written against.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

from repro.config import NetworkConfig
from repro.errors import ProtocolError
from repro.net.message import NetMessage
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.sim.tracing import NullTraceRecorder, TraceRecorder
from repro.stack.events import AbcastRequest, AdeliverIndication, Event
from repro.stack.interface import AdeliverListener
from repro.stack.module import Microprotocol
from repro.live.transport import Transport


class LiveRuntime:
    """Hosts one process's protocol stack on the asyncio event loop."""

    def __init__(
        self,
        pid: int,
        n: int,
        modules: list[Microprotocol],
        transport: Transport,
        *,
        net_config: NetworkConfig | None = None,
        loop: asyncio.AbstractEventLoop | None = None,
        clock: Callable[[], float] = time.monotonic,
        on_crash: Callable[[], None] | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if not modules:
            raise ProtocolError("a stack needs at least one module")
        self.pid = pid
        self.alive = True
        self.transport = transport
        self.net_config = net_config if net_config is not None else NetworkConfig()
        self._n = n
        self._loop = loop
        self._clock = clock
        self._epoch = 0.0
        self._on_crash = on_crash
        #: Optional wall-clock span trace; records use the same span
        #: schema as the simulator's (see :mod:`repro.obs.spans`), with
        #: durations measured on the host clock instead of modelled CPU.
        self._trace = trace if trace is not None else NullTraceRecorder()
        #: Always-on boundary-crossing counter — the live counterpart of
        #: the simulator's attribution (the live runtime has no modelled
        #: CPU, so crossings are counted but carry no time).
        self.boundary_crossings = 0

        self._modules = list(modules)
        self._by_name: dict[str, Microprotocol] = {}
        self._height: dict[str, int] = {}
        depth = len(modules)
        for index, module in enumerate(modules):
            if module.name in self._by_name:
                raise ProtocolError(f"duplicate module name {module.name!r}")
            self._by_name[module.name] = module
            self._height[module.name] = depth - 1 - index

        self._timers: dict[tuple[str, str], asyncio.TimerHandle] = {}
        self._fd_timers: list[asyncio.TimerHandle] = []
        self._adeliver_listener: AdeliverListener | None = None
        self._fd: Any = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Group size."""
        return self._n

    @property
    def now(self) -> float:
        """Wall-clock seconds since the deployment epoch."""
        return self._clock() - self._epoch

    def set_epoch(self, epoch: float) -> None:
        """Anchor ``now`` to the orchestrator-distributed time origin.

        All workers of one deployment receive the same epoch (a single
        ``time.monotonic`` reading on the orchestrator), so their
        timestamps are directly comparable on one host — the basis of
        the cross-process early-latency measurement.
        """
        self._epoch = epoch

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop timers run on."""
        if self._loop is None:
            self._loop = asyncio.get_event_loop()
        return self._loop

    @property
    def modules(self) -> tuple[Microprotocol, ...]:
        """The stack, top to bottom."""
        return tuple(self._modules)

    def module(self, name: str) -> Microprotocol:
        """Look up a module by routing name."""
        return self._by_name[name]

    def set_adeliver_listener(self, listener: AdeliverListener) -> None:
        """Register the application callback for adelivered messages."""
        self._adeliver_listener = listener

    def attach_failure_detector(self, fd: Any) -> None:
        """Attach a failure detector (see :mod:`repro.fd`)."""
        self._fd = fd
        fd.attach(self)

    def start(self) -> None:
        """Run every module's ``on_start`` hook (top to bottom)."""
        if self._fd is not None:
            self._fd.start()
        for module in self._modules:
            self._execute_actions(module, module.on_start())

    def resume_at(self, next_instance: int, delivered: set) -> None:
        """Fast-forward the stack to a crash-recovered position.

        Part of the rejoin protocol (see PROTOCOLS.md): after a
        restarted worker re-applied its WAL prefix and state-transferred
        the remainder, the stack must skip the *delivered* message ids
        and participate from ordering position *next_instance* on. The
        top module is required to support recovery (the sequencer is
        good-run-only by design and raises here); every lower module
        that also defines ``resume_at`` is fast-forwarded too — the ring
        stack's proposer and acceptor share the learner's consensus
        instance numbering, so the same position applies stack-wide.
        """
        top = self._modules[0]
        if getattr(top, "resume_at", None) is None:
            raise ProtocolError(
                f"stack module {top.name!r} does not support crash recovery"
            )
        for module in self._modules:
            resume = getattr(module, "resume_at", None)
            if resume is not None:
                resume(next_instance, delivered)

    # ------------------------------------------------------------------
    # Application entry points
    # ------------------------------------------------------------------

    def inject(self, event: Event) -> None:
        """Deliver *event* from the application to the top module."""
        if not self.alive:
            return
        top = self._modules[0]
        if not self._trace.enabled:
            self._run_handler(top, lambda: top.handle_event(event))
            return
        start = self.now
        if type(event) is AbcastRequest:
            self._trace.record(
                start, "abcast.submit", self.pid, event.message.msg_id
            )
        self._run_handler(top, lambda: top.handle_event(event))
        self._trace.record(
            start, "span.inject", self.pid, (top.name, self.now - start)
        )

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Stop this process permanently (fail-stop model).

        In a deployed worker ``on_crash`` terminates the OS process —
        the live equivalent of the simulator's instant halt. In-process
        uses (tests) may pass a no-op observer instead.
        """
        if not self.alive:
            return
        self.alive = False
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for timer in self._fd_timers:
            timer.cancel()
        self._fd_timers.clear()
        if self._on_crash is not None:
            self._on_crash()

    # ------------------------------------------------------------------
    # Failure detector plumbing
    # ------------------------------------------------------------------

    def suspects(self) -> frozenset[int]:
        """Current FD output (empty set when no FD is attached)."""
        if self._fd is None:
            return frozenset()
        return self._fd.suspects()

    def on_suspicion_change(self, suspects: frozenset[int]) -> None:
        """FD callback: propagate the new suspect set to every module."""
        if not self.alive:
            return
        for module in self._modules:
            if not self.alive:
                return
            self._run_handler(module, lambda m=module: m.handle_suspicion(suspects))

    def fd_send(self, dst: int, kind: str, payload: Any, payload_size: int) -> None:
        """Send a failure-detector message (routed to the peer FD)."""
        if not self.alive:
            return
        header = self.net_config.base_header + self.net_config.per_module_header
        self.transport.send(
            NetMessage(
                kind=kind,
                module="fd",
                src=self.pid,
                dst=dst,
                payload=payload,
                payload_size=payload_size,
                header_size=header,
            )
        )

    def fd_schedule(self, delay: float, callback: Callable[[], None]) -> asyncio.TimerHandle:
        """Schedule an FD-internal callback; suppressed after a crash."""

        def _fire() -> None:
            if self.alive:
                callback()

        handle = self.loop.call_later(max(0.0, delay), _fire)
        self._fd_timers.append(handle)
        if len(self._fd_timers) > 64:
            # Keep only handles still waiting to fire; the crash path
            # cancels whatever remains here.
            now = self.loop.time()
            self._fd_timers = [
                t for t in self._fd_timers if not t.cancelled() and t.when() > now
            ]
        return handle

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------

    def on_network_message(self, message: NetMessage) -> None:
        """Entry point for the transport: route one arrived message."""
        if not self.alive:
            return
        if message.module == "fd":
            if self._fd is None:
                raise ProtocolError(f"p{self.pid} got FD message without an FD")
            self._fd.handle_message(message)
            return
        module = self._by_name.get(message.module)
        if module is None:
            raise ProtocolError(
                f"p{self.pid} has no module {message.module!r} for {message}"
            )
        if not self._trace.enabled:
            self._run_handler(module, lambda: module.handle_message(message))
            return
        start = self.now
        self._run_handler(module, lambda: module.handle_message(message))
        self._trace.record(
            start,
            "span.recv",
            self.pid,
            (module.name, self.now - start, message.kind),
        )

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------

    def _run_handler(self, module: Microprotocol, thunk: Callable[[], list[Action]]) -> None:
        actions = thunk()
        self._execute_actions(module, actions)

    def _execute_actions(self, module: Microprotocol, actions: list[Action]) -> None:
        for action in actions:
            if not self.alive:
                return
            if isinstance(action, Send):
                self._do_send(module, action.dst, action.kind, action.payload, action.payload_size)
            elif isinstance(action, SendToAll):
                for dst in module.ctx.others:
                    if not self.alive:
                        return
                    self._do_send(module, dst, action.kind, action.payload, action.payload_size)
            elif isinstance(action, EmitUp):
                self._emit(module, action.event, direction=-1)
            elif isinstance(action, EmitDown):
                self._emit(module, action.event, direction=+1)
            elif isinstance(action, StartTimer):
                self._start_timer(module, action)
            elif isinstance(action, CancelTimer):
                self._cancel_timer(module, action.name)
            else:
                raise ProtocolError(
                    f"module {module.name!r} returned unknown action {action!r}"
                )

    def _do_send(
        self, module: Microprotocol, dst: int, kind: str, payload: Any, payload_size: int
    ) -> None:
        height = self._height[module.name]
        header = self.net_config.base_header + self.net_config.per_module_header * (
            height + 1
        )
        message = NetMessage(
            kind=kind,
            module=module.name,
            src=self.pid,
            dst=dst,
            payload=payload,
            payload_size=payload_size,
            header_size=header,
        )
        if not self._trace.enabled:
            self.transport.send(message)
            return
        start = self.now
        self.transport.send(message)
        self._trace.record(
            start,
            "span.send",
            self.pid,
            (module.name, self.now - start, kind, dst),
        )

    def _emit(self, module: Microprotocol, event: Event, *, direction: int) -> None:
        index = self._modules.index(module)
        target_index = index + direction
        if direction < 0 and target_index < 0:
            self._deliver_to_application(event)
            return
        if target_index >= len(self._modules):
            raise ProtocolError(
                f"module {module.name!r} emitted {type(event).__name__} below "
                "the bottom of the stack"
            )
        target = self._modules[target_index]
        self.boundary_crossings += 1
        if not self._trace.enabled:
            self._run_handler(target, lambda: target.handle_event(event))
            return
        start = self.now
        self._run_handler(target, lambda: target.handle_event(event))
        self._trace.record(
            start,
            "span.cross",
            self.pid,
            ("boundary", self.now - start, module.name, target.name),
        )

    def _deliver_to_application(self, event: Event) -> None:
        if not isinstance(event, AdeliverIndication):
            raise ProtocolError(
                f"top module emitted unexpected event {type(event).__name__} "
                "to the application"
            )
        when = self.now
        if self._trace.enabled:
            self._trace.record(
                when,
                "span.adeliver",
                self.pid,
                ("app", 0.0, event.message.msg_id),
            )
            self._trace.record(
                when, "abcast.adeliver", self.pid, event.message.msg_id
            )
        if self._adeliver_listener is not None:
            self._adeliver_listener(self.pid, event.message, when)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _start_timer(self, module: Microprotocol, action: StartTimer) -> None:
        key = (module.name, action.name)
        existing = self._timers.get(key)
        if existing is not None:
            existing.cancel()

        def _fire() -> None:
            if not self.alive:
                return
            if self._timers.get(key) is not handle:
                return  # superseded by a later re-arm
            del self._timers[key]
            self._fire_timer(module, action.name, action.payload)

        handle = self.loop.call_later(max(0.0, action.delay), _fire)
        self._timers[key] = handle

    def _fire_timer(self, module: Microprotocol, name: str, payload: Any) -> None:
        if not self.alive:
            return
        self._run_handler(module, lambda: module.handle_timer(name, payload))

    def _cancel_timer(self, module: Microprotocol, name: str) -> None:
        key = (module.name, name)
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
