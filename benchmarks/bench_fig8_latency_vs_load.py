"""Figure 8 — early latency vs offered load (message size 16384 B).

Paper result: latency of both stacks is close at low loads; as load
grows the monolithic stack's early latency is 30 % (n = 7) to 50 %
(n = 3) lower, and both curves plateau under flow control.

Each benchmark runs the modular stack at one figure-8 operating point
(the monolithic twin runs outside the timer) and asserts the latency
relation; ``python -m repro figure8`` prints the full series.
"""

import pytest

from repro.config import StackKind
from repro.experiments.runner import run_simulation

from benchmarks.conftest import bench_config, run_benched

HIGH_LOAD = 7000.0
LOW_LOAD = 300.0
SIZE = 16384


@pytest.mark.parametrize("n", [3, 7])
def test_fig8_high_load_latency_gap(pair_runner, n):
    modular, mono = pair_runner(n, HIGH_LOAD, SIZE)
    assert modular.metrics.latency_mean is not None
    assert mono.metrics.latency_mean is not None
    gap = 1.0 - mono.metrics.latency_mean / modular.metrics.latency_mean
    # Paper: 30-50 % lower; accept the simulator's 25-65 % band.
    assert 0.25 <= gap <= 0.65, f"latency gap {gap:.0%} outside expected band"


@pytest.mark.parametrize("kind", [StackKind.MODULAR, StackKind.MONOLITHIC])
def test_fig8_latency_rises_then_plateaus(benchmark, kind):
    high = run_benched(benchmark, bench_config(3, kind, HIGH_LOAD, SIZE))
    low = run_simulation(bench_config(3, kind, LOW_LOAD, SIZE), seed=1)
    very_high = run_simulation(bench_config(3, kind, 5000.0, SIZE), seed=1)
    assert low.metrics.latency_mean < high.metrics.latency_mean
    # Plateau: the last two loads agree within 25 %.
    ratio = high.metrics.latency_mean / very_high.metrics.latency_mean
    assert 0.75 <= ratio <= 1.33


def test_fig8_stacks_close_at_low_load(benchmark):
    modular = run_benched(
        benchmark, bench_config(3, StackKind.MODULAR, LOW_LOAD, SIZE)
    )
    mono = run_simulation(bench_config(3, StackKind.MONOLITHIC, LOW_LOAD, SIZE), seed=1)
    ratio = modular.metrics.latency_mean / mono.metrics.latency_mean
    assert ratio < 2.0  # "relatively close for small offered loads"
