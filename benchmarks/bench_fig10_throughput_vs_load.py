"""Figure 10 — throughput vs offered load (message size 16384 B).

Paper result: throughput equals the offered load at low loads, reaches a
flow-control plateau as load grows, and at high offered load the
monolithic stack sustains 25 % (n = 7) to 30 % (n = 3) more messages
per second than the modular one.
"""

import pytest

from repro.config import StackKind
from repro.experiments.runner import run_simulation

from benchmarks.conftest import bench_config, run_benched

HIGH_LOAD = 7000.0
LOW_LOAD = 300.0
SIZE = 16384


@pytest.mark.parametrize("n", [3, 7])
def test_fig10_high_load_throughput_gap(pair_runner, n):
    modular, mono = pair_runner(n, HIGH_LOAD, SIZE)
    gain = mono.metrics.throughput / modular.metrics.throughput - 1.0
    # Paper: +25-30 %. The simulator reproduces n=3 closely; at n=7 the
    # purely coordinator-bound model amplifies the gap (EXPERIMENTS.md).
    if n == 3:
        assert 0.15 <= gain <= 0.50, f"n=3 gain {gain:.0%}"
    else:
        assert gain >= 0.25, f"n=7 gain {gain:.0%}"


@pytest.mark.parametrize("kind", [StackKind.MODULAR, StackKind.MONOLITHIC])
def test_fig10_throughput_equals_offered_load_when_light(benchmark, kind):
    result = run_benched(benchmark, bench_config(3, kind, LOW_LOAD, SIZE))
    assert result.metrics.throughput == pytest.approx(LOW_LOAD, rel=0.1)


@pytest.mark.parametrize("kind", [StackKind.MODULAR, StackKind.MONOLITHIC])
def test_fig10_plateau_under_flow_control(benchmark, kind):
    at_4000 = run_benched(benchmark, bench_config(3, kind, 4000.0, SIZE))
    at_7000 = run_simulation(bench_config(3, kind, HIGH_LOAD, SIZE), seed=1)
    assert at_7000.metrics.throughput < HIGH_LOAD * 0.5  # saturated
    ratio = at_7000.metrics.throughput / at_4000.metrics.throughput
    assert 0.8 <= ratio <= 1.25  # plateau
    assert at_7000.metrics.blocked_attempts > 0
