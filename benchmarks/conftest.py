"""Shared helpers for the benchmark suite.

Each bench file regenerates one of the paper's evaluation artifacts
(Figs. 8-11, the §5.2 analytical tables, and the §4 ablation) at a
reduced-but-representative scale, measures its wall-clock cost with
pytest-benchmark, and asserts the paper's qualitative result on the
simulated metrics. The full-resolution tables are produced by
``python -m repro <figureN|analysis|ablation>``; EXPERIMENTS.md records
those against the paper.
"""

from __future__ import annotations

import pytest

from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.experiments.runner import RunResult, run_simulation

#: Simulated seconds per benchmarked run (short but past warm-up).
BENCH_DURATION = 0.6
BENCH_WARMUP = 0.3


def bench_config(
    n: int, kind: StackKind, offered_load: float, message_size: int
) -> RunConfig:
    """A representative run configuration for benchmarking."""
    return RunConfig(
        n=n,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(
            offered_load=offered_load, message_size=message_size
        ),
        duration=BENCH_DURATION,
        warmup=BENCH_WARMUP,
    )


def run_benched(benchmark, config: RunConfig) -> RunResult:
    """Benchmark one deterministic simulation run and return its result."""
    return benchmark.pedantic(
        lambda: run_simulation(config, seed=1),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )


@pytest.fixture
def pair_runner(benchmark):
    """Runs the modular stack under the benchmark and the monolithic twin
    outside it, returning both results for gap assertions."""

    def run(n: int, offered_load: float, message_size: int):
        modular = run_benched(
            benchmark, bench_config(n, StackKind.MODULAR, offered_load, message_size)
        )
        mono = run_simulation(
            bench_config(n, StackKind.MONOLITHIC, offered_load, message_size), seed=1
        )
        return modular, mono

    return run
