"""Machine-readable benchmark harness for the simulator's hot core.

Measures a fixed set of figure operating points — the simulator's
dominant workloads — and emits a ``BENCH_<rev>.json`` snapshot with
events/sec and wall-clock per point::

    PYTHONPATH=src python benchmarks/bench_core.py            # write snapshot
    PYTHONPATH=src python benchmarks/bench_core.py --check \\
        benchmarks/BENCH_baseline.json                        # regression gate

The regression gate compares events/sec (CPU-time based, minimum over
``--reps`` repetitions, so scheduler noise on shared CI runners mostly
cancels) against a committed baseline and fails when any point is more
than ``--tolerance`` (default 25 %) slower. Being *faster* passes with a
note to refresh the baseline.

Unlike the ``bench_fig*.py`` pytest-benchmark suites (which assert the
paper's qualitative results), this harness guards the *simulator's* own
speed, so a refactor of the event loop cannot silently regress it.

This file is import-safe under pytest collection (``bench_*.py`` is a
collected pattern): all work happens inside ``main()``.
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.config import (
    FlowControlConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import run_simulation

#: Benchmark operating points: figure-representative (config, seed) pairs.
#: Names are stable identifiers — the regression gate joins on them.
BENCH_POINTS: dict[str, RunConfig] = {
    "fig8_n3_modular_load7000": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MODULAR),
        workload=WorkloadConfig(offered_load=7000.0, message_size=16384),
    ),
    "fig8_n3_monolithic_load7000": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MONOLITHIC),
        workload=WorkloadConfig(offered_load=7000.0, message_size=16384),
    ),
    "fig9_n3_modular_size32768": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MODULAR),
        workload=WorkloadConfig(offered_load=2000.0, message_size=32768),
    ),
    "fig10_n7_modular_load2000": RunConfig(
        n=7,
        stack=StackConfig(kind=StackKind.MODULAR),
        workload=WorkloadConfig(offered_load=2000.0, message_size=16384),
    ),
    "fig11_n3_monolithic_size64": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MONOLITHIC),
        workload=WorkloadConfig(offered_load=2000.0, message_size=64),
    ),
    "ring_n3_ringpaxos_load2000": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.RINGPAXOS),
        workload=WorkloadConfig(offered_load=2000.0, message_size=16384),
    ),
    # The high-offered-load distillation point: same shape as the 2x
    # batched-vs-plain-sequencer acceptance comparison.
    "distill_n3_batched_sequencer_load8000": RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.BATCHED_SEQUENCER),
        workload=WorkloadConfig(offered_load=8000.0, message_size=64),
        flow_control=FlowControlConfig(window=64),
    ),
}

BENCH_SEED = 1
DEFAULT_REPS = 5
DEFAULT_TOLERANCE = 0.25


def measure_point(config: RunConfig, reps: int) -> dict:
    """Run one point *reps* times; report the fastest repetition."""
    best_cpu = float("inf")
    best_wall = float("inf")
    events = 0
    for _ in range(reps):
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        result = run_simulation(config, seed=BENCH_SEED)
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
        best_cpu = min(best_cpu, cpu)
        best_wall = min(best_wall, wall)
        events = result.events_executed  # deterministic across reps
    return {
        "wall_s": round(best_wall, 6),
        "cpu_s": round(best_cpu, 6),
        "events": events,
        "events_per_sec": round(events / best_cpu, 1),
    }


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).parent,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def run_bench(reps: int) -> dict:
    """Measure every point and assemble the snapshot document."""
    points = {}
    for name, config in BENCH_POINTS.items():
        points[name] = measure_point(config, reps)
        print(
            f"{name}: {points[name]['events_per_sec']:,.0f} events/s "
            f"({points[name]['events']} events, "
            f"{points[name]['cpu_s'] * 1e3:.0f} ms cpu)"
        )
    return {
        "revision": git_revision(),
        "python": platform.python_version(),
        "reps": reps,
        "seed": BENCH_SEED,
        "points": points,
    }


def check_against(snapshot: dict, baseline: dict, tolerance: float) -> int:
    """Gate *snapshot* against *baseline*; returns a process exit code."""
    failures = []
    for name, base in baseline["points"].items():
        current = snapshot["points"].get(name)
        if current is None:
            failures.append(f"{name}: missing from current run")
            continue
        ratio = current["events_per_sec"] / base["events_per_sec"]
        verdict = "ok"
        if ratio < 1.0 - tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {ratio:.2f}x baseline events/sec "
                f"(allowed ≥ {1.0 - tolerance:.2f}x)"
            )
        elif ratio > 1.0 + tolerance:
            verdict = "faster (consider refreshing the baseline)"
        print(f"check {name}: {ratio:.2f}x baseline — {verdict}")
    if failures:
        print("\nbench regression gate FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nbench regression gate passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the simulator core and gate regressions."
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=DEFAULT_REPS,
        help=f"repetitions per point, fastest wins (default: {DEFAULT_REPS})",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="snapshot path (default: benchmarks/BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="compare against a committed baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed events/sec slowdown fraction (default: {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    snapshot = run_bench(args.reps)
    out = args.out
    if out is None:
        out = Path(__file__).parent / f"BENCH_{snapshot['revision']}.json"
    out.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {out}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text(encoding="utf-8"))
        return check_against(snapshot, baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
