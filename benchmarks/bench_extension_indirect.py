"""Extension bench — indirect consensus (the paper's related-work [12]).

Ekwall & Schiper's "indirect consensus" keeps the modular reduction but
has consensus order message *ids*; payloads travel only in the diffusion
step. The paper cites it as the technique that significantly improved
modular-stack performance. This bench measures, inside our calibrated
model, what the idea buys over the paper's (direct) modular stack at a
byte-bound operating point — and verifies the §5.2-style data claim:
the modular stack's data per consensus drops from ~2(n-1)·M·l to
~(n-1)·M·l, i.e. *below* the monolithic stack's (n-1)(1+1/n)·M·l.
"""

import pytest

from repro.config import (
    ConsensusVariant,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import run_simulation

LOAD = 4000.0
SIZE = 16384


def _config(consensus: ConsensusVariant) -> RunConfig:
    return RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MODULAR, consensus=consensus),
        workload=WorkloadConfig(offered_load=LOAD, message_size=SIZE),
        duration=0.6,
        warmup=0.3,
    )


def test_indirect_consensus_beats_direct_modular(benchmark):
    indirect = benchmark.pedantic(
        lambda: run_simulation(_config(ConsensusVariant.INDIRECT), seed=1),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    direct = run_simulation(_config(ConsensusVariant.OPTIMIZED), seed=1)
    assert indirect.metrics.throughput > direct.metrics.throughput
    assert indirect.metrics.latency_mean < direct.metrics.latency_mean
    # The message COUNT is unchanged (same reduction, same flows)...
    assert indirect.messages_per_consensus == pytest.approx(
        direct.messages_per_consensus, rel=0.02
    )
    # ...but the data volume roughly halves: proposals carry ids only.
    assert (
        indirect.payload_bytes_per_consensus
        < 0.6 * direct.payload_bytes_per_consensus
    )


def test_indirect_data_volume_beats_even_the_monolith(benchmark):
    indirect = benchmark.pedantic(
        lambda: run_simulation(_config(ConsensusVariant.INDIRECT), seed=1),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    mono = run_simulation(
        RunConfig(
            n=3,
            stack=StackConfig(kind=StackKind.MONOLITHIC),
            workload=WorkloadConfig(offered_load=LOAD, message_size=SIZE),
            duration=0.6,
            warmup=0.3,
        ),
        seed=1,
    )
    per_message_indirect = (
        indirect.payload_bytes_per_consensus / indirect.delivered_per_consensus
    )
    per_message_mono = mono.payload_bytes_per_consensus / mono.delivered_per_consensus
    # (n-1)·l  <  (n-1)(1+1/n)·l
    assert per_message_indirect < per_message_mono
