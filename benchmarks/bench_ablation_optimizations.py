"""Ablation of the monolithic optimizations (§4.1-§4.3).

Beyond the paper's figures: toggles each optimization individually at a
fixed-cost-dominated operating point (1 KiB messages, saturating load)
and verifies the attribution DESIGN.md calls out:

* every monolithic variant beats the modular reference (the mechanical
  cost of composition),
* the full §4 combination minimizes messages per consensus (the
  algorithmic gain), and
* the full combination is the best monolithic variant at this point.
"""

from repro.experiments.ablation import run_ablation


def test_ablation_at_fixed_cost_dominated_point(benchmark):
    rows = benchmark.pedantic(
        lambda: run_ablation(
            n=3, offered_load=4000.0, message_size=1024, seeds=(1,), duration=0.6
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    by_label = {row.label: row for row in rows}
    modular = by_label["modular (reference)"]
    full = by_label["mono, all (paper)"]
    none = by_label["mono, no optimizations"]

    # Mechanical gain: even the unoptimized monolithic module beats the
    # composed stack (no boundary crossings, single header).
    assert none.throughput > modular.throughput
    assert none.latency_ms < modular.latency_ms

    # Algorithmic gain: the full §4 combination wins and needs the
    # fewest messages per consensus.
    assert full.throughput >= none.throughput
    assert full.latency_ms <= none.latency_ms
    assert full.messages_per_consensus == min(
        row.messages_per_consensus for row in rows
    )

    # Each single optimization reduces messages relative to none.
    for label in (
        "mono, only §4.1 combine",
        "mono, only §4.2 piggyback",
        "mono, only §4.3 cheap-rb",
    ):
        assert by_label[label].messages_per_consensus < none.messages_per_consensus
