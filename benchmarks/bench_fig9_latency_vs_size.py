"""Figure 9 — early latency vs message size (offered load 2000 msg/s).

Paper result: the monolithic stack's latency is ~50 % lower for small
messages; as size grows, per-byte costs take over and the gap narrows to
25 % (n = 7) / 35 % (n = 3); latency is flat for small sizes and rises
with large ones.
"""

import pytest

from repro.config import StackKind
from repro.experiments.runner import run_simulation

from benchmarks.conftest import bench_config, run_benched

LOAD = 2000.0
SMALL, MEDIUM, LARGE = 64, 4096, 32768


@pytest.mark.parametrize("n", [3, 7])
def test_fig9_small_message_latency_gap(pair_runner, n):
    modular, mono = pair_runner(n, LOAD, SMALL)
    gap = 1.0 - mono.metrics.latency_mean / modular.metrics.latency_mean
    # Paper: ~50 % lower at small sizes.
    assert gap >= 0.40, f"small-size latency gap only {gap:.0%}"


@pytest.mark.parametrize("n", [3, 7])
def test_fig9_gap_narrows_for_large_messages(pair_runner, n):
    modular, mono = pair_runner(n, LOAD, LARGE)
    small_modular = run_simulation(
        bench_config(n, StackKind.MODULAR, LOAD, SMALL), seed=1
    )
    small_mono = run_simulation(
        bench_config(n, StackKind.MONOLITHIC, LOAD, SMALL), seed=1
    )
    gap_large = 1.0 - mono.metrics.latency_mean / modular.metrics.latency_mean
    gap_small = 1.0 - small_mono.metrics.latency_mean / small_modular.metrics.latency_mean
    assert gap_large < gap_small
    assert gap_large >= 0.15


@pytest.mark.parametrize("kind", [StackKind.MODULAR, StackKind.MONOLITHIC])
def test_fig9_latency_flat_then_rising(benchmark, kind):
    small = run_benched(benchmark, bench_config(3, kind, LOAD, SMALL))
    medium = run_simulation(bench_config(3, kind, LOAD, MEDIUM), seed=1)
    large = run_simulation(bench_config(3, kind, LOAD, LARGE), seed=1)
    # Flat-ish up to a few KiB...
    assert medium.metrics.latency_mean < 2.5 * small.metrics.latency_mean
    # ...then clearly rising at 32 KiB.
    assert large.metrics.latency_mean > 1.5 * medium.metrics.latency_mean
