"""Figure 11 — throughput vs message size (offered load 2000 msg/s).

Paper result: monolithic throughput is 10-15 % higher at small sizes;
throughput stays constant up to a size knee (4096 B for n = 7, 16384 B
for n = 3 in the paper) and degrades beyond it, with n = 7 degrading
faster than n = 3 as the large proposals must reach more processes.
"""

import pytest

from repro.config import StackKind
from repro.experiments.runner import run_simulation

from benchmarks.conftest import bench_config, run_benched

LOAD = 2000.0
SMALL, LARGE = 64, 32768


@pytest.mark.parametrize("n", [3, 7])
def test_fig11_monolithic_wins_at_small_sizes(pair_runner, n):
    modular, mono = pair_runner(n, LOAD, SMALL)
    assert mono.metrics.throughput >= modular.metrics.throughput


def test_fig11_throughput_degrades_with_size(benchmark):
    small = run_benched(
        benchmark, bench_config(3, StackKind.MODULAR, LOAD, SMALL)
    )
    large = run_simulation(bench_config(3, StackKind.MODULAR, LOAD, LARGE), seed=1)
    assert large.metrics.throughput < 0.6 * small.metrics.throughput


def test_fig11_large_groups_degrade_faster_with_size(benchmark):
    """n=7 loses proportionally more throughput than n=3 as the size
    grows (the proposal must carry M·l bytes to n-1 processes). The
    effect shows on the monolithic curves, which are not yet
    fixed-cost-saturated at small sizes (see EXPERIMENTS.md)."""
    n3_small = run_benched(
        benchmark, bench_config(3, StackKind.MONOLITHIC, LOAD, SMALL)
    )
    n3_large = run_simulation(
        bench_config(3, StackKind.MONOLITHIC, LOAD, LARGE), seed=1
    )
    n7_small = run_simulation(
        bench_config(7, StackKind.MONOLITHIC, LOAD, SMALL), seed=1
    )
    n7_large = run_simulation(
        bench_config(7, StackKind.MONOLITHIC, LOAD, LARGE), seed=1
    )
    retention_n3 = n3_large.metrics.throughput / n3_small.metrics.throughput
    retention_n7 = n7_large.metrics.throughput / n7_small.metrics.throughput
    assert retention_n7 < retention_n3


def test_fig11_monolithic_gap_at_high_offered_small_size(benchmark):
    """At small sizes and moderate load the gap is modest (paper:
    10-15 %) because neither stack is byte-bound yet."""
    modular = run_benched(
        benchmark, bench_config(3, StackKind.MODULAR, 4000.0, 1024)
    )
    mono = run_simulation(bench_config(3, StackKind.MONOLITHIC, 4000.0, 1024), seed=1)
    gain = mono.metrics.throughput / modular.metrics.throughput - 1.0
    assert gain > 0.0
