"""§5.2 — analytical evaluation, validated against the simulator.

Reproduces the paper's two analytical tables:

* §5.2.1 message counts — modular (n-1)(M + 2 + ⌊(n+1)/2⌋) vs
  monolithic 2(n-1); for n=3, M=4 that is 16 vs 4 messages.
* §5.2.2 data volumes — overhead (n-1)/(n+1): 50 % (n=3), 75 % (n=7).

The benchmarks time a steady-state validation run per stack and assert
the simulator's wire counters match the closed forms.
"""

import pytest

from repro.analysis.model import (
    compare,
    modularity_data_overhead,
)
from repro.config import StackKind
from repro.experiments.tables import validate_stack


def test_analytical_formulas_paper_numbers(benchmark):
    def evaluate():
        return [compare(n, 4, 16384) for n in (3, 7)]

    rows = benchmark(evaluate)
    n3, n7 = rows
    assert n3.modular_messages == 16 and n3.monolithic_messages == 4
    assert n7.modular_messages == 60 and n7.monolithic_messages == 12
    assert n3.data_overhead == pytest.approx(0.50)
    assert n7.data_overhead == pytest.approx(0.75)


@pytest.mark.parametrize("n", [3, 7])
@pytest.mark.parametrize("stack", [StackKind.MODULAR, StackKind.MONOLITHIC])
def test_simulator_matches_section_52(benchmark, n, stack):
    row = benchmark.pedantic(
        lambda: validate_stack(
            n, stack, message_size=2048, offered_load=4000.0, duration=0.6
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert row.message_error < 0.08, (
        f"{stack.value} n={n}: {row.measured_messages:.2f} measured vs "
        f"{row.predicted_messages:.2f} predicted msgs/consensus"
    )
    assert row.payload_error < 0.15


def test_measured_data_overhead(benchmark):
    def measure():
        modular = validate_stack(
            3, StackKind.MODULAR, message_size=8192, offered_load=4000.0, duration=0.6
        )
        mono = validate_stack(
            3, StackKind.MONOLITHIC, message_size=8192, offered_load=4000.0, duration=0.6
        )
        per_modular = modular.measured_payload_bytes / modular.measured_m
        per_mono = mono.measured_payload_bytes / mono.measured_m
        return (per_modular - per_mono) / per_mono

    overhead = benchmark.pedantic(measure, rounds=2, iterations=1, warmup_rounds=0)
    assert overhead == pytest.approx(modularity_data_overhead(3), abs=0.12)
