"""Extension bench — what does consensus-based fault tolerance cost?

Beyond the paper: compares both of the paper's stacks against a fixed
sequencer, the classic non-fault-tolerant total-order baseline from the
Ensemble/Appia architecture family the related-work section mentions.

Findings encoded below:

* at n = 3 the sequencer beats both stacks — the gap to the monolithic
  stack is the price of tolerating crashes at all, and the further gap
  to the modular stack is the paper's cost of modularity;
* at n = 7 the monolithic stack *overtakes* the sequencer: ordering
  M = 4 messages per consensus amortizes fixed costs over batches,
  which the message-at-a-time sequencer cannot do. Batching, not
  protocol-step count, dominates at scale.
"""

import pytest

from repro.config import StackKind
from repro.experiments.runner import run_simulation

from benchmarks.conftest import bench_config, run_benched

LOAD = 7000.0
SIZE = 16384


def test_sequencer_bounds_both_stacks_at_n3(benchmark):
    sequencer = run_benched(
        benchmark, bench_config(3, StackKind.SEQUENCER, LOAD, SIZE)
    )
    mono = run_simulation(bench_config(3, StackKind.MONOLITHIC, LOAD, SIZE), seed=1)
    modular = run_simulation(bench_config(3, StackKind.MODULAR, LOAD, SIZE), seed=1)
    assert sequencer.metrics.throughput > mono.metrics.throughput
    assert mono.metrics.throughput > modular.metrics.throughput
    assert sequencer.metrics.latency_mean < modular.metrics.latency_mean


def test_batched_consensus_overtakes_sequencer_at_n7(benchmark):
    sequencer = run_benched(
        benchmark, bench_config(7, StackKind.SEQUENCER, LOAD, SIZE)
    )
    mono = run_simulation(bench_config(7, StackKind.MONOLITHIC, LOAD, SIZE), seed=1)
    modular = run_simulation(bench_config(7, StackKind.MODULAR, LOAD, SIZE), seed=1)
    # Batching (M=4 per consensus) beats message-at-a-time sequencing...
    assert mono.metrics.throughput > sequencer.metrics.throughput
    # ...but the modular stack's per-message overheads still lose to it.
    assert sequencer.metrics.throughput > modular.metrics.throughput


@pytest.mark.parametrize("n", [3, 7])
def test_cost_of_fault_tolerance_is_bounded(benchmark, n):
    sequencer = run_benched(
        benchmark, bench_config(n, StackKind.SEQUENCER, LOAD, SIZE)
    )
    mono = run_simulation(bench_config(n, StackKind.MONOLITHIC, LOAD, SIZE), seed=1)
    ratio = sequencer.metrics.throughput / mono.metrics.throughput
    assert 0.5 < ratio < 3.0
